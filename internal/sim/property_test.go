package sim

import (
	"testing"

	"lopram/internal/workload"
)

// randomProgram builds a random pal-thread computation and returns its body
// together with its analytically computed total work and span (critical
// path), so properties can be asserted against ground truth.
func randomProgram(r *workload.RNG, depth int) (f Func, work, span int64) {
	pre := int64(r.Intn(5)) // 0..4 units before any children
	post := int64(r.Intn(3))
	if depth == 0 {
		w := pre + 1
		return func(tc *TC) { tc.Work(w) }, w, w
	}
	nKids := 1 + r.Intn(3)
	kids := make([]Func, nKids)
	var kidWork, kidSpan int64
	useSpawn := r.Intn(4) == 0 // occasionally a nowait block
	for i := range kids {
		kf, kw, ks := randomProgram(r, depth-1)
		kids[i] = kf
		kidWork += kw
		if ks > kidSpan {
			kidSpan = ks
		}
	}
	work = pre + kidWork + post
	if useSpawn {
		// Spawned children run concurrently with the parent's tail;
		// the span is conservative: parent path or deepest child.
		span = pre + post
		if kidSpan > span {
			span = kidSpan
		}
		span = pre + post + kidSpan // safe upper bound on the critical path
		return func(tc *TC) {
			tc.Work(pre)
			tc.Spawn(kids...)
			tc.Work(post)
		}, work, span
	}
	span = pre + kidSpan + post
	return func(tc *TC) {
		tc.Work(pre)
		tc.Do(kids...)
		tc.Work(post)
	}, work, span
}

// TestGreedyBoundsOnRandomPrograms: for any program and any p, the greedy
// scheduler satisfies Brent's bounds work/p ≤ T_p ≤ work/p + span, work is
// conserved across processors, and the run is deterministic.
func TestGreedyBoundsOnRandomPrograms(t *testing.T) {
	r := workload.NewRNG(123)
	for trial := 0; trial < 60; trial++ {
		prog, work, span := randomProgram(r, 1+r.Intn(4))
		for _, p := range []int{1, 2, 3, 5, 8} {
			m := New(Config{P: p})
			res, err := m.Run(prog)
			if err != nil {
				t.Fatalf("trial %d p=%d: %v", trial, p, err)
			}
			if res.Work != work {
				t.Fatalf("trial %d p=%d: work %d, want %d", trial, p, res.Work, work)
			}
			var busy int64
			for _, b := range res.ProcBusy {
				busy += b
			}
			if busy != work {
				t.Fatalf("trial %d p=%d: Σ busy %d != work %d", trial, p, busy, work)
			}
			lower := (work + int64(p) - 1) / int64(p)
			if res.Steps < lower {
				t.Fatalf("trial %d p=%d: T_p=%d < work/p=%d", trial, p, res.Steps, lower)
			}
			if res.Steps > work/int64(p)+span {
				t.Fatalf("trial %d p=%d: T_p=%d > work/p+span=%d (work=%d span=%d)",
					trial, p, res.Steps, work/int64(p)+span, work, span)
			}
			// Determinism: a second run is identical.
			res2 := m.MustRun(prog)
			if res2.Steps != res.Steps || res2.Work != res.Work {
				t.Fatalf("trial %d p=%d: nondeterministic (%d,%d) vs (%d,%d)",
					trial, p, res.Steps, res.Work, res2.Steps, res2.Work)
			}
		}
	}
}

// randomMixedProgram extends randomProgram with occasional standard-thread
// Launches; span accounting is skipped (standard threads interleave with the
// pal schedule), so callers assert conservation and termination only.
func randomMixedProgram(r *workload.RNG, depth int) (f Func, work int64) {
	pre := int64(r.Intn(4))
	post := int64(r.Intn(3))
	if depth == 0 {
		w := pre + 1
		return func(tc *TC) { tc.Work(w) }, w
	}
	nKids := 1 + r.Intn(3)
	kids := make([]Func, nKids)
	var kidWork int64
	for i := range kids {
		kf, kw := randomMixedProgram(r, depth-1)
		kids[i] = kf
		kidWork += kw
	}
	var stdKids []Func
	var stdWork int64
	if r.Intn(3) == 0 {
		nStd := 1 + r.Intn(3)
		for i := 0; i < nStd; i++ {
			w := int64(1 + r.Intn(9))
			stdWork += w
			stdKids = append(stdKids, func(tc *TC) { tc.Work(w) })
		}
	}
	work = pre + kidWork + post + stdWork
	return func(tc *TC) {
		tc.Work(pre)
		if len(stdKids) > 0 {
			tc.Launch(stdKids...)
		}
		tc.Do(kids...)
		tc.Work(post)
	}, work
}

// TestMixedProgramsConserveWork fuzzes pal trees with standard threads mixed
// in: the run must terminate, conserve work across processors, and respect
// the work/p lower bound, for every processor count and activation policy.
func TestMixedProgramsConserveWork(t *testing.T) {
	r := workload.NewRNG(777)
	for trial := 0; trial < 40; trial++ {
		prog, work := randomMixedProgram(r, 1+r.Intn(4))
		for _, p := range []int{1, 2, 3, 8} {
			for _, pol := range []Policy{Preorder, FIFO, LIFO} {
				m := New(Config{P: p, Policy: pol})
				res, err := m.Run(prog)
				if err != nil {
					t.Fatalf("trial %d p=%d %v: %v", trial, p, pol, err)
				}
				if res.Work != work {
					t.Fatalf("trial %d p=%d: work %d, want %d", trial, p, res.Work, work)
				}
				var busy int64
				for _, b := range res.ProcBusy {
					busy += b
				}
				if busy != work {
					t.Fatalf("trial %d p=%d: Σbusy %d != work %d", trial, p, busy, work)
				}
				if res.Steps < (work+int64(p)-1)/int64(p) {
					t.Fatalf("trial %d p=%d: T_p %d below work/p", trial, p, res.Steps)
				}
			}
		}
	}
}

// TestMonotoneInP: more processors never hurt, for Do-only programs (greedy
// scheduling of series-parallel DAGs).
func TestMonotoneInP(t *testing.T) {
	r := workload.NewRNG(321)
	for trial := 0; trial < 20; trial++ {
		prog, _, _ := randomDoProgram(r, 3)
		prev := int64(1 << 62)
		for _, p := range []int{1, 2, 4, 8, 16} {
			m := New(Config{P: p})
			res := m.MustRun(prog)
			if res.Steps > prev {
				// Greedy schedulers can in principle suffer
				// anomalies, but the LoPRAM handoff rule is
				// processor-monotone on fork-join programs; a
				// regression here means the scheduler changed.
				t.Fatalf("trial %d: T_%d=%d > T_prev=%d", trial, p, res.Steps, prev)
			}
			prev = res.Steps
		}
	}
}

// randomDoProgram is randomProgram restricted to Do blocks.
func randomDoProgram(r *workload.RNG, depth int) (f Func, work, span int64) {
	pre := int64(1 + r.Intn(4))
	if depth == 0 {
		return func(tc *TC) { tc.Work(pre) }, pre, pre
	}
	nKids := 2
	kids := make([]Func, nKids)
	var kidWork, kidSpan int64
	for i := range kids {
		kf, kw, ks := randomDoProgram(r, depth-1)
		kids[i] = kf
		kidWork += kw
		if ks > kidSpan {
			kidSpan = ks
		}
	}
	return func(tc *TC) {
		tc.Work(pre)
		tc.Do(kids...)
	}, pre + kidWork, pre + kidSpan
}

// TestPoliciesAllValid: every activation policy yields a valid, work-
// conserving, Brent-bounded schedule; the paper's preorder default is never
// worse than LIFO on the balanced mergesort shape.
func TestPoliciesAllValid(t *testing.T) {
	for _, pol := range []Policy{Preorder, FIFO, LIFO} {
		m := New(Config{P: 4, Policy: pol})
		res := m.MustRun(msortFig(64))
		if res.Work != 127 { // 2·64-1 nodes, unit work each
			t.Fatalf("%v: work = %d, want 127", pol, res.Work)
		}
		if res.Steps < 127/4 || res.Steps > 127/4+8 {
			t.Fatalf("%v: steps %d outside Brent window", pol, res.Steps)
		}
	}
}

// TestAtLeastOneActiveInvariant: §3.1 — "If there are any pal-threads
// pending, at least one of them must be actively executing". In scheduler
// terms: the run never deadlocks and every created thread eventually
// activates and finishes.
func TestAtLeastOneActiveInvariant(t *testing.T) {
	r := workload.NewRNG(55)
	for trial := 0; trial < 30; trial++ {
		prog, _, _ := randomProgram(r, 3)
		m := New(Config{P: 2, Trace: true})
		res, err := m.Run(prog)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, n := range res.Trace.Nodes() {
			if n.ActivatedAt < 0 || n.DoneAt < 0 {
				t.Fatalf("trial %d: thread %d never completed (activated %d, done %d)",
					trial, n.ID, n.ActivatedAt, n.DoneAt)
			}
			if n.ActivatedAt < n.CreatedAt {
				t.Fatalf("trial %d: thread %d activated before created", trial, n.ID)
			}
		}
	}
}

// TestActivationRespectsCreationOrderAmongSiblings: within one palthreads
// block, sibling i never activates after sibling j > i created in the same
// block (the paper's "in a manner consistent with order of creation").
func TestActivationRespectsCreationOrderAmongSiblings(t *testing.T) {
	r := workload.NewRNG(66)
	for trial := 0; trial < 30; trial++ {
		prog, _, _ := randomProgram(r, 3)
		for _, p := range []int{1, 2, 3} {
			m := New(Config{P: p, Trace: true})
			res, err := m.Run(prog)
			if err != nil {
				t.Fatal(err)
			}
			// Group nodes by parent path; siblings must activate in
			// index order.
			byParent := map[string][]*NodeTrace{}
			for _, n := range res.Trace.Nodes() {
				if len(n.Path) == 0 {
					continue
				}
				key := pathKey(n.Path[:len(n.Path)-1])
				byParent[key] = append(byParent[key], n)
			}
			for _, sibs := range byParent {
				for i := 1; i < len(sibs); i++ {
					a, b := sibs[i-1], sibs[i]
					if a.Path[len(a.Path)-1] < b.Path[len(b.Path)-1] &&
						a.CreatedAt == b.CreatedAt &&
						a.ActivatedAt > b.ActivatedAt {
						t.Fatalf("trial %d p=%d: sibling %v activated after younger %v",
							trial, p, a.Path, b.Path)
					}
				}
			}
		}
	}
}

func TestResultUtilization(t *testing.T) {
	m := New(Config{P: 2})
	res := m.MustRun(func(tc *TC) {
		tc.Do(
			func(tc *TC) { tc.Work(10) },
			func(tc *TC) { tc.Work(10) },
		)
	})
	if u := res.Utilization(2); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want 1.0", u)
	}
}

func TestEmptyBlocksAreNoOps(t *testing.T) {
	m := New(Config{P: 2})
	res := m.MustRun(func(tc *TC) {
		tc.Do()
		tc.Spawn()
		tc.Work(0)
		tc.Work(-5)
		tc.Work(3)
	})
	if res.Steps != 3 || res.Work != 3 {
		t.Fatalf("steps=%d work=%d, want 3/3", res.Steps, res.Work)
	}
	if res.Threads != 1 {
		t.Fatalf("threads = %d, want 1", res.Threads)
	}
}

func TestTraceGanttAndBusyAt(t *testing.T) {
	m := New(Config{P: 2, Trace: true})
	res := m.MustRun(func(tc *TC) {
		tc.Work(2)
		tc.Do(
			func(tc *TC) { tc.Work(3) },
			func(tc *TC) { tc.Work(3) },
		)
	})
	busy := res.Trace.BusyAt(1)
	if busy[0] != 0 && busy[1] != 0 {
		t.Fatalf("root not busy at t=1: %v", busy)
	}
	busy = res.Trace.BusyAt(4)
	occupied := 0
	for _, id := range busy {
		if id >= 0 {
			occupied++
		}
	}
	if occupied != 2 {
		t.Fatalf("children not both busy at t=4: %v", busy)
	}
}
