package sim

// Standard threads (§3.1): "Standard threads are executed simultaneously and
// independently of the number of cores available; they are executed in
// parallel if enough cores are available or by using multitasking if the
// thread count exceeds the degree of parallelism, just as in a regular RAM."
//
// The simulator models them as processor-sharing tasks: pal-threads keep
// their dedicated processors (once active they are never preempted), and at
// every instant the standard threads divide the remaining free processors —
// in parallel when enough are free, by deterministic round-robin
// multitasking otherwise, and stalled entirely while pal-threads hold all
// processors. Standard threads may perform Work and Launch further standard
// threads; they may not open palthreads blocks (Do/Spawn), which belong to
// the algorithmic tree.

// Launch creates standard threads with the given bodies. They begin
// executing immediately (there is no pending state for standard threads) and
// there is no join primitive: the machine runs until every thread, standard
// or pal, has finished. Both pal-threads and standard threads may Launch.
func (tc *TC) Launch(children ...Func) {
	if len(children) == 0 {
		return
	}
	tc.th.req = request{kind: reqLaunch, children: children}
	tc.th.yieldAndWait()
}

// stdPool tracks live standard threads and their remaining work.
type stdPool struct {
	list  []*thread // live standard threads, creation order
	rotor int       // round-robin position for quantum distribution
}

func (sp *stdPool) add(th *thread) { sp.list = append(sp.list, th) }

// compact removes finished threads, preserving order and keeping the rotor
// pointing at the same logical successor.
func (sp *stdPool) compact() {
	if len(sp.list) == 0 {
		return
	}
	kept := sp.list[:0]
	newRotor := 0
	for i, th := range sp.list {
		if th.state == Done {
			if i < sp.rotor {
				newRotor--
			}
			continue
		}
		kept = append(kept, th)
	}
	sp.rotor += newRotor
	sp.list = kept
	if len(sp.list) == 0 {
		sp.rotor = 0
	} else {
		sp.rotor %= len(sp.list)
		if sp.rotor < 0 {
			sp.rotor += len(sp.list)
		}
	}
}

func (sp *stdPool) busy() int { return len(sp.list) }

// minRemaining returns the smallest remaining work among live threads.
func (sp *stdPool) minRemaining() int64 {
	min := int64(1) << 62
	for _, th := range sp.list {
		if th.busyRem < min {
			min = th.busyRem
		}
	}
	return min
}

// serviceStd resumes a standard thread's body and processes its requests
// until it declares work or finishes.
func (m *Machine) serviceStd(th *thread) {
	for {
		th.resume <- struct{}{}
		<-th.yield
		req := th.req
		switch req.kind {
		case reqWork:
			th.busyRem = req.units
			m.totalWork += req.units
			return

		case reqLaunch:
			for _, body := range req.children {
				m.launchStd(th, body)
			}

		case reqResolve:
			m.handleResolve(req.fut)

		case reqDone:
			th.state = Done
			th.doneAt = m.now
			m.live--
			if m.traceRec != nil {
				m.traceRec.noteDone(th, m.now)
			}
			return

		case reqPanic:
			panic(threadPanic{val: req.panicVal})

		case reqDo, reqSpawn, reqAwait:
			panic("sim: standard threads cannot use pal-thread primitives (Do/Spawn/Await)")
		}
	}
}

// launchStd creates and immediately starts a standard thread.
func (m *Machine) launchStd(parent *thread, body Func) {
	th := m.newThread(parent, len(parent.children), body)
	th.std = true
	th.state = Running
	th.activatedAt = m.now
	m.pending.remove(th) // standard threads never sit in the pal queue
	if m.traceRec != nil {
		m.traceRec.noteActivated(th, m.now)
	}
	m.std.add(th)
	m.serviceStd(th)
	if th.state == Done {
		m.std.compact()
	}
}

// advanceStd progresses the standard-thread pool given f free processors,
// returning how far the clock moved. Invariants: f >= 1, pool non-empty.
//
// When f >= live threads, every thread runs at full speed for the largest
// stretch that changes nothing (bounded by the earliest pal event). When
// f < live threads, one time step's f quanta go to the next f threads in
// round-robin order — deterministic multitasking.
func (m *Machine) advanceStd(f int) int64 {
	s := m.std.busy()
	if f >= s {
		delta := m.std.minRemaining()
		if len(m.events) > 0 {
			if gap := m.events[0].at - m.now; gap < delta {
				delta = gap
			}
		}
		if delta < 1 {
			delta = 1
		}
		for i, th := range m.std.list {
			th.busyRem -= delta
			proc := m.freeProcs[i%f]
			m.procBusy[proc] += delta
			if m.traceRec != nil {
				m.traceRec.noteBusyStd(th, proc, m.now, delta)
			}
		}
		m.now += delta
		m.finishStdDue()
		return delta
	}

	// Multitasking: one step, f quanta, round-robin from the rotor.
	for i := 0; i < f; i++ {
		th := m.std.list[(m.std.rotor+i)%s]
		th.busyRem--
		proc := m.freeProcs[i]
		m.procBusy[proc]++
		if m.traceRec != nil {
			m.traceRec.noteBusyStd(th, proc, m.now, 1)
		}
	}
	m.std.rotor = (m.std.rotor + f) % s
	m.now++
	m.finishStdDue()
	return 1
}

// finishStdDue services every standard thread whose work segment completed.
func (m *Machine) finishStdDue() {
	finished := false
	for _, th := range m.std.list {
		if th.busyRem <= 0 && th.state == Running {
			m.serviceStd(th)
			if th.state == Done {
				finished = true
			}
		}
	}
	if finished {
		m.std.compact()
	}
}
