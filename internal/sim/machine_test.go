package sim

import (
	"testing"
)

// msortFig is the cost model under which the simulator reproduces Figure 1
// of the paper exactly: each call performs one unit of divide/base work and
// the merge is free (the figure tracks only pal-request events).
func msortFig(n int) Func {
	return func(tc *TC) {
		tc.Work(1)
		if n <= 1 {
			return
		}
		tc.Do(msortFig(n/2), msortFig(n-n/2))
	}
}

// TestFigure1Labels checks every node label of Figure 1: the time step at
// which each call of mergesort(n=16) on p=4 processors is pal-requested
// (activated, in our terminology; see the sim package comment).
func TestFigure1Labels(t *testing.T) {
	m := New(Config{P: 4, Trace: true})
	res := m.MustRun(msortFig(16))

	want := map[string]int64{
		"":  1,
		"0": 2, "1": 2,
		"0.0": 3, "0.1": 3, "1.0": 3, "1.1": 3,
	}
	// Each of the four depth-2 subtrees has the same local schedule:
	// left child at 4, its leaves at 5 and 6, right child at 7, its
	// leaves at 8 and 9.
	for _, x := range []string{"0.0", "0.1", "1.0", "1.1"} {
		want[x+".0"] = 4
		want[x+".0.0"] = 5
		want[x+".0.1"] = 6
		want[x+".1"] = 7
		want[x+".1.0"] = 8
		want[x+".1.1"] = 9
	}

	for key, wantAt := range want {
		path := parsePath(key)
		n := res.Trace.Node(path...)
		if n == nil {
			t.Fatalf("node %q: not created", key)
		}
		if n.ActivatedAt != wantAt {
			t.Errorf("node %q: activated at %d, want %d", key, n.ActivatedAt, wantAt)
		}
	}
	if res.Threads != 31 {
		t.Errorf("threads = %d, want 31", res.Threads)
	}
}

// TestFigure1Colors checks the colour classes of Figure 1 at t = 6: the
// instant the figure depicts.
func TestFigure1Colors(t *testing.T) {
	m := New(Config{P: 4, Trace: true})
	res := m.MustRun(msortFig(16))
	tr := res.Trace

	check := func(key string, want Color) {
		t.Helper()
		got := tr.ColorAt(6, parsePath(key)...)
		if got != want {
			t.Errorf("t=6 color(%s) = %v, want %v", key, got, want)
		}
	}
	// Activated by t=6: root, both halves, four quarters, the left
	// eighth of each quarter and its two leaves.
	for _, k := range []string{"", "0", "1", "0.0", "0.1", "1.0", "1.1"} {
		check(k, Black)
	}
	for _, x := range []string{"0.0", "0.1", "1.0", "1.1"} {
		check(x+".0", Black)
		check(x+".0.0", Black)
		check(x+".0.1", Black)
		// The right eighths were pal-requested at t=4 but activate
		// only at t=7: gray in the figure.
		check(x+".1", Gray)
		// Their children have not been requested at all: white.
		check(x+".1.0", White)
		check(x+".1.1", White)
	}
}

func parsePath(s string) []int32 {
	if s == "" {
		return nil
	}
	var path []int32
	cur := int32(0)
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			path = append(path, cur)
			cur = 0
			continue
		}
		cur = cur*10 + int32(s[i]-'0')
	}
	return path
}

func TestSequentialWorkOnly(t *testing.T) {
	m := New(Config{P: 1})
	res := m.MustRun(func(tc *TC) { tc.Work(10) })
	if res.Steps != 10 {
		t.Fatalf("Steps = %d, want 10", res.Steps)
	}
	if res.Work != 10 {
		t.Fatalf("Work = %d, want 10", res.Work)
	}
}

func TestDoJoinSemantics(t *testing.T) {
	// Two children of 5 units each on 2 processors run fully in
	// parallel: total 1 (parent) + 5 (children in parallel) + 1 (parent
	// after join) = 7 steps.
	m := New(Config{P: 2})
	res := m.MustRun(func(tc *TC) {
		tc.Work(1)
		tc.Do(
			func(tc *TC) { tc.Work(5) },
			func(tc *TC) { tc.Work(5) },
		)
		tc.Work(1)
	})
	if res.Steps != 7 {
		t.Fatalf("Steps = %d, want 7", res.Steps)
	}
	// Same program on 1 processor: children run sequentially: 1+5+5+1.
	m1 := New(Config{P: 1})
	res1 := m1.MustRun(func(tc *TC) {
		tc.Work(1)
		tc.Do(
			func(tc *TC) { tc.Work(5) },
			func(tc *TC) { tc.Work(5) },
		)
		tc.Work(1)
	})
	if res1.Steps != 12 {
		t.Fatalf("sequential Steps = %d, want 12", res1.Steps)
	}
}

func TestSpawnNoWait(t *testing.T) {
	// A spawned child does not block the parent; the run ends when all
	// threads finish.
	m := New(Config{P: 2})
	res := m.MustRun(func(tc *TC) {
		tc.Spawn(func(tc *TC) { tc.Work(8) })
		tc.Work(2)
	})
	// Parent works steps 1-2 on proc A; child activates in the global
	// assignment phase and works 8 steps on proc B starting at t=1.
	if res.Steps != 8 {
		t.Fatalf("Steps = %d, want 8", res.Steps)
	}
	if res.Work != 10 {
		t.Fatalf("Work = %d, want 10", res.Work)
	}
}

func TestWorkConservation(t *testing.T) {
	m := New(Config{P: 3})
	res := m.MustRun(msortFig(64))
	var busy int64
	for _, b := range res.ProcBusy {
		busy += b
	}
	if busy != res.Work {
		t.Fatalf("Σ ProcBusy = %d, want Work = %d", busy, res.Work)
	}
}

// TestBrentBounds checks work/p <= T_p <= work/p + span for the mergesort
// shape across processor counts (all costs unit, so span = tree depth).
func TestBrentBounds(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 16} {
		m := New(Config{P: p})
		res := m.MustRun(msortFig(128))
		lower := (res.Work + int64(p) - 1) / int64(p)
		if res.Steps < lower {
			t.Errorf("p=%d: T_p=%d below work/p=%d", p, res.Steps, lower)
		}
		// span: unit work per node over depth log2(128)+1 = 8 levels.
		span := int64(8)
		if res.Steps > res.Work/int64(p)+span+1 {
			t.Errorf("p=%d: T_p=%d above Brent bound %d", p, res.Steps,
				res.Work/int64(p)+span+1)
		}
	}
}
