package sim

import "lopram/internal/crew"

// CREW shared-memory integration (§3): a Machine can carry an audited
// crew.Memory whose epoch tracks the simulated clock. Threads access it
// through TC.Read/TC.Write, which stamp every access with the issuing
// processor and the current step, so the auditor sees exactly the
// concurrency the schedule produces: two threads touching the same cell in
// the same step with at least one write is a CREW violation — the paper's
// undefined behaviour, surfaced as a recorded violation or a panic depending
// on the memory's policy.
//
// Accesses are instantaneous bookkeeping on top of the declared Work cost:
// the program's cost model decides how many steps a memory-touching phase
// takes, matching how the paper's analyses charge time.

// AttachMemory equips the machine with an audited shared memory of the given
// word size and violation policy. It must be called before Run; the memory
// is reset (reallocated) at each Run. It returns the machine for chaining.
func (m *Machine) AttachMemory(words int, policy crew.Policy) *Machine {
	m.memWords = words
	m.memPolicy = policy
	return m
}

// Memory returns the attached memory of the current/last run, or nil.
func (m *Machine) Memory() *crew.Memory { return m.mem }

// syncMemEpoch brings the audited memory's epoch up to the simulator clock.
func (m *Machine) syncMemEpoch() {
	if m.mem == nil {
		return
	}
	for m.mem.Epoch() < m.now {
		m.mem.Tick()
	}
}

// Read returns the value at addr of the machine's shared memory, audited
// against the thread's processor at the current step. It panics if no
// memory is attached.
func (tc *TC) Read(addr int) int64 {
	m := tc.m
	if m.mem == nil {
		panic("sim: no shared memory attached (use Machine.AttachMemory)")
	}
	m.syncMemEpoch()
	return m.mem.Read(tc.proc(), addr)
}

// Write stores v at addr of the machine's shared memory, audited against
// the thread's processor at the current step.
func (tc *TC) Write(addr int, v int64) {
	m := tc.m
	if m.mem == nil {
		panic("sim: no shared memory attached (use Machine.AttachMemory)")
	}
	m.syncMemEpoch()
	m.mem.Write(tc.proc(), addr, v)
}

// proc returns the auditing processor id for the thread: its dedicated
// processor for pal-threads, or a stable pseudo-processor id for standard
// threads (which hold no fixed processor; using the thread id beyond the
// machine's processor range keeps distinct standard threads distinct for
// the auditor without colliding with pal processors).
func (tc *TC) proc() int {
	if tc.th.proc >= 0 {
		return tc.th.proc
	}
	return tc.m.p + tc.th.id
}
