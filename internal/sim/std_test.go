package sim

import "testing"

// TestStdParallelWhenCoresFree: with enough processors, standard threads run
// fully in parallel, "just as in a regular RAM".
func TestStdParallelWhenCoresFree(t *testing.T) {
	m := New(Config{P: 4})
	res := m.MustRun(func(tc *TC) {
		tc.Launch(
			func(tc *TC) { tc.Work(10) },
			func(tc *TC) { tc.Work(10) },
			func(tc *TC) { tc.Work(10) },
		)
		// Root does no further work; three free processors carry the
		// three standard threads simultaneously.
	})
	if res.Steps != 10 {
		t.Fatalf("Steps = %d, want 10 (fully parallel)", res.Steps)
	}
	if res.Work != 30 {
		t.Fatalf("Work = %d, want 30", res.Work)
	}
}

// TestStdMultitasking: more standard threads than processors multitask;
// total time is work divided by the processors available.
func TestStdMultitasking(t *testing.T) {
	m := New(Config{P: 2})
	res := m.MustRun(func(tc *TC) {
		tc.Launch(
			func(tc *TC) { tc.Work(10) },
			func(tc *TC) { tc.Work(10) },
			func(tc *TC) { tc.Work(10) },
			func(tc *TC) { tc.Work(10) },
		)
	})
	// 40 units of work over 2 processors: 20 steps, fair round-robin.
	if res.Steps != 20 {
		t.Fatalf("Steps = %d, want 20", res.Steps)
	}
}

// TestStdFairness: round-robin multitasking finishes equal-length standard
// threads at (nearly) the same time — no thread starves.
func TestStdFairness(t *testing.T) {
	m := New(Config{P: 2, Trace: true})
	res := m.MustRun(func(tc *TC) {
		var kids []Func
		for i := 0; i < 6; i++ {
			kids = append(kids, func(tc *TC) { tc.Work(9) })
		}
		tc.Launch(kids...)
	})
	var minDone, maxDone int64 = 1 << 62, 0
	for _, n := range res.Trace.Nodes() {
		if len(n.Path) == 0 {
			continue
		}
		if n.DoneAt < minDone {
			minDone = n.DoneAt
		}
		if n.DoneAt > maxDone {
			maxDone = n.DoneAt
		}
	}
	// 54 units over 2 procs = 27 steps; with fair sharing all finish
	// within one round-robin cycle (6 threads / 2 procs = 3 steps).
	if maxDone-minDone > 3 {
		t.Fatalf("unfair completion spread: %d .. %d", minDone, maxDone)
	}
}

// TestStdStallsWhilePalHoldsAllProcs: pal-threads keep dedicated processors;
// standard threads only progress on free ones.
func TestStdStallsWhilePalHoldsAllProcs(t *testing.T) {
	m := New(Config{P: 2})
	res := m.MustRun(func(tc *TC) {
		tc.Launch(func(tc *TC) { tc.Work(5) }) // standard: needs a free proc
		tc.Do(                                 // two pal children occupy both processors for 10 steps
			func(tc *TC) { tc.Work(10) },
			func(tc *TC) { tc.Work(10) },
		)
	})
	// Pal phase: root handed its proc to child 1, child 2 on the other:
	// both busy through step 10; the standard thread stalls, then runs
	// steps 11-15 → 15 total.
	if res.Steps != 15 {
		t.Fatalf("Steps = %d, want 15 (std stalled behind pal)", res.Steps)
	}
}

// TestStdSharesWithPal: one pal thread working leaves p-1 processors for the
// standard pool.
func TestStdSharesWithPal(t *testing.T) {
	m := New(Config{P: 3})
	res := m.MustRun(func(tc *TC) {
		tc.Launch(
			func(tc *TC) { tc.Work(8) },
			func(tc *TC) { tc.Work(8) },
		)
		tc.Work(8) // the root (a pal thread) works too
	})
	// Root holds one processor for steps 1-8; the two standard threads
	// use the other two in parallel: everything done at step 8.
	if res.Steps != 8 {
		t.Fatalf("Steps = %d, want 8", res.Steps)
	}
	if res.Work != 24 {
		t.Fatalf("Work = %d, want 24", res.Work)
	}
}

// TestStdLaunchNested: standard threads can launch more standard threads.
func TestStdLaunchNested(t *testing.T) {
	m := New(Config{P: 4})
	res := m.MustRun(func(tc *TC) {
		tc.Launch(func(tc *TC) {
			tc.Work(2)
			tc.Launch(func(tc *TC) { tc.Work(2) })
			tc.Work(2)
		})
	})
	if res.Work != 6 {
		t.Fatalf("Work = %d, want 6", res.Work)
	}
	if res.Threads != 3 {
		t.Fatalf("Threads = %d, want 3", res.Threads)
	}
}

// TestStdCannotOpenPalBlocks: Do/Spawn from a standard thread panic.
func TestStdCannotOpenPalBlocks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when standard thread called Do")
		}
	}()
	m := New(Config{P: 2})
	m.MustRun(func(tc *TC) {
		tc.Launch(func(tc *TC) {
			tc.Do(func(tc *TC) { tc.Work(1) })
		})
	})
}

// TestStdWorkConservation: quanta accounting balances.
func TestStdWorkConservation(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5} {
		m := New(Config{P: p})
		res := m.MustRun(func(tc *TC) {
			tc.Launch(
				func(tc *TC) { tc.Work(7) },
				func(tc *TC) { tc.Work(13) },
				func(tc *TC) { tc.Work(29) },
			)
			tc.Work(3)
		})
		var busy int64
		for _, b := range res.ProcBusy {
			busy += b
		}
		if busy != res.Work || res.Work != 52 {
			t.Fatalf("p=%d: Σbusy=%d work=%d, want 52", p, busy, res.Work)
		}
	}
}

// TestStdMixedWithPalTree: a full pal computation alongside background
// standard threads still satisfies conservation and completes.
func TestStdMixedWithPalTree(t *testing.T) {
	m := New(Config{P: 4})
	res := m.MustRun(func(tc *TC) {
		tc.Launch(
			func(tc *TC) { tc.Work(50) },
			func(tc *TC) { tc.Work(50) },
		)
		var rec func(n int) Func
		rec = func(n int) Func {
			return func(tc *TC) {
				tc.Work(1)
				if n <= 1 {
					return
				}
				tc.Do(rec(n/2), rec(n/2))
			}
		}
		rec(64)(tc)
	})
	var busy int64
	for _, b := range res.ProcBusy {
		busy += b
	}
	if busy != res.Work {
		t.Fatalf("Σbusy=%d work=%d", busy, res.Work)
	}
	if res.Work != 100+127 {
		t.Fatalf("work = %d, want 227", res.Work)
	}
	// Lower bound: 227 units on 4 procs ≥ 57 steps.
	if res.Steps < 57 {
		t.Fatalf("Steps = %d below work/p", res.Steps)
	}
}

// TestStdP1SerializesEverything: one processor multitasks all standard
// threads after the pal root finishes.
func TestStdP1SerializesEverything(t *testing.T) {
	m := New(Config{P: 1})
	res := m.MustRun(func(tc *TC) {
		tc.Launch(
			func(tc *TC) { tc.Work(4) },
			func(tc *TC) { tc.Work(4) },
		)
		tc.Work(2)
	})
	if res.Steps != 10 {
		t.Fatalf("Steps = %d, want 10", res.Steps)
	}
}
