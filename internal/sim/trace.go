package sim

import "sort"

// Trace records the observable schedule of a run: per-thread lifecycle
// timestamps (keyed by tree path) and per-processor busy intervals. It is
// the data source for the Figure 1 reproduction and the Gantt renderer.
type Trace struct {
	nodes     map[string]*NodeTrace
	order     []*NodeTrace // creation order
	Intervals [][]Interval // per processor
}

// NodeTrace is the recorded lifecycle of one pal-thread.
type NodeTrace struct {
	ID          int
	Path        []int32
	CreatedAt   int64 // pal-requested (gray from here)
	ActivatedAt int64 // assigned a processor (black from here); -1 if never
	DoneAt      int64 // finished; -1 if never
	Resumptions []int64
	Proc        int // last processor the thread ran on
}

// Interval is a half-open busy interval [From, To) on one processor.
type Interval struct {
	From, To int64
	Thread   int
}

func newTrace(p int) *Trace {
	return &Trace{
		nodes:     make(map[string]*NodeTrace),
		Intervals: make([][]Interval, p),
	}
}

func pathKey(path []int32) string {
	b := make([]byte, 0, len(path)*2)
	for _, c := range path {
		// Child indices are small in practice; two bytes keep keys
		// unambiguous for indices up to 65535.
		b = append(b, byte(c>>8), byte(c))
	}
	return string(b)
}

func (t *Trace) noteCreated(th *thread, at int64) {
	n := &NodeTrace{
		ID:          th.id,
		Path:        append([]int32(nil), th.path...),
		CreatedAt:   at,
		ActivatedAt: -1,
		DoneAt:      -1,
		Proc:        -1,
	}
	t.nodes[pathKey(th.path)] = n
	t.order = append(t.order, n)
}

func (t *Trace) noteActivated(th *thread, at int64) {
	n := t.nodes[pathKey(th.path)]
	n.ActivatedAt = at
	n.Proc = th.proc
}

func (t *Trace) noteResumed(th *thread, at int64) {
	n := t.nodes[pathKey(th.path)]
	n.Resumptions = append(n.Resumptions, at)
	n.Proc = th.proc
}

func (t *Trace) noteBusy(th *thread, from, units int64) {
	t.Intervals[th.proc] = append(t.Intervals[th.proc], Interval{
		From: from, To: from + units, Thread: th.id,
	})
}

// noteBusyStd records a standard thread's quantum on the processor it was
// multiplexed onto (standard threads hold no dedicated processor).
func (t *Trace) noteBusyStd(th *thread, proc int, from, units int64) {
	t.Intervals[proc] = append(t.Intervals[proc], Interval{
		From: from, To: from + units, Thread: th.id,
	})
}

func (t *Trace) noteDone(th *thread, at int64) {
	t.nodes[pathKey(th.path)].DoneAt = at
}

// Node returns the trace of the thread at the given tree path, or nil if no
// such thread was created.
func (t *Trace) Node(path ...int32) *NodeTrace {
	return t.nodes[pathKey(path)]
}

// Nodes returns all recorded threads in creation order.
func (t *Trace) Nodes() []*NodeTrace { return t.order }

// Color is the Figure 1 node colour of a call site at a given instant.
type Color int

const (
	// White: the call has not been pal-requested.
	White Color = iota
	// Gray: pal-requested but not yet activated.
	Gray
	// Black: activated (running, waiting or already finished).
	Black
)

func (c Color) String() string {
	switch c {
	case White:
		return "white"
	case Gray:
		return "gray"
	case Black:
		return "black"
	}
	return "?"
}

// ColorAt reports the Figure 1 colour of the call at path at time step t.
// Calls with no recorded thread are White.
func (t *Trace) ColorAt(step int64, path ...int32) Color {
	n := t.nodes[pathKey(path)]
	if n == nil || n.CreatedAt > step {
		return White
	}
	if n.ActivatedAt < 0 || n.ActivatedAt > step {
		return Gray
	}
	return Black
}

// MaxTime returns the largest timestamp in the trace.
func (t *Trace) MaxTime() int64 {
	var last int64
	for _, n := range t.order {
		if n.DoneAt > last {
			last = n.DoneAt
		}
		if n.CreatedAt > last {
			last = n.CreatedAt
		}
	}
	return last
}

// BusyAt returns the ids of threads occupying each processor at time step t
// (-1 for idle processors).
func (t *Trace) BusyAt(step int64) []int {
	out := make([]int, len(t.Intervals))
	for p := range out {
		out[p] = -1
		iv := t.Intervals[p]
		i := sort.Search(len(iv), func(i int) bool { return iv[i].To > step })
		if i < len(iv) && iv[i].From <= step {
			out[p] = iv[i].Thread
		}
	}
	return out
}
