// Package sim implements a deterministic discrete-time simulator of the
// LoPRAM machine of §3 of the paper: p processors in MIMD mode executing a
// program structured as pal-threads (Parallel ALgorithmic threads).
//
// # Thread model (§3.1)
//
// Pal-threads form an ordered tree rooted at the main thread. A thread
// issues a palthreads block (Do) to create children in a specific order; the
// block has an implicit wait, so the thread suspends and its processor is
// handed to the first pending child. Children are activated in creation
// order as processors free up; "once a thread has been activated it remains
// active just like a standard thread". When the last child of a block
// completes, control returns to the parent on the freeing processor. Pending
// threads with no local claim on a processor are activated in the order
// given by the preorder traversal of the tree (the paper's default policy;
// FIFO and LIFO orders are provided for the ablation study).
//
// A nowait block (Spawn) creates children without suspending the parent —
// the paper's "palthreads { ... } nowait" construct, which Algorithm 1 (the
// DP scheduler) relies on.
//
// # Time
//
// Time advances in integer steps. Each active thread occupies one processor
// and consumes work declared through Work(k): k units take k steps. Creating
// children, merging bookkeeping and scheduling decisions are free unless the
// program declares work for them, so the program's cost model — not the
// simulator — decides what a step means. The simulator is event-driven and
// skips idle stretches, so simulated times far beyond the number of
// scheduler interactions are cheap.
//
// The simulated wall-clock of a run is exactly the T_p(n) analysed by
// Theorem 1 of the paper, which is what the experiment suite checks.
package sim

import "fmt"

// State is the lifecycle state of a pal-thread. The names mirror the node
// colours of Figure 1 of the paper: a Pending thread is "gray" (requested
// but not active), Running/Waiting threads are "black" (activated), and
// calls never created are "white" (they have no Thread at all).
type State int32

const (
	// Pending: created by a palthreads block but not yet assigned a
	// processor (gray in Figure 1).
	Pending State = iota
	// Running: activated and occupying a processor.
	Running
	// Waiting: suspended at the implicit wait of a Do block while its
	// children execute; holds no processor.
	Waiting
	// Done: finished.
	Done
)

func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Waiting:
		return "waiting"
	case Done:
		return "done"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Func is the body of a pal-thread. It receives the thread context used to
// declare work and create children.
type Func func(*TC)

// reqKind discriminates the scheduler requests a thread goroutine can issue.
type reqKind int

const (
	reqWork reqKind = iota
	reqDo
	reqSpawn
	reqLaunch
	reqDone
	reqPanic
	reqResolve
	reqAwait
)

// request is the message a thread passes to the scheduler at each yield
// point. Exactly one request is outstanding per thread; the simulator is
// single-threaded and resumes threads one at a time.
type request struct {
	kind     reqKind
	units    int64   // reqWork
	children []Func  // reqDo, reqSpawn, reqLaunch
	panicVal any     // reqPanic
	fut      *Future // reqResolve, reqAwait
}

// thread is the scheduler-side record of a pal-thread.
type thread struct {
	id       int
	parent   *thread
	childIdx int     // index among siblings, creation order
	path     []int32 // child indices from root; preorder sort key
	seq      int64   // global creation sequence number (FIFO/LIFO keys)

	state State
	proc  int   // processor currently assigned, -1 if none
	busy  int64 // time at which the current Work segment completes

	// Children created by this thread, in creation order. pendingHead
	// indexes the first child that has not been activated yet; the
	// scheduler hands freed processors to children starting there.
	children    []*thread
	pendingHead int

	// blockOpen is true between a Do issue and the completion of all the
	// block's children; blockRemaining counts unfinished children of the
	// current block. Spawn children are not counted (no implicit wait).
	blockOpen      bool
	blockRemaining int

	// Lockstep coroutine channels: the scheduler sends on resume, the
	// thread body writes req and replies on yield.
	resume chan struct{}
	yield  chan struct{}
	req    request

	// Trace timestamps (-1 where not reached).
	createdAt, activatedAt, doneAt int64

	// heap bookkeeping for the pending queue (lazy deletion).
	inQueue bool
	// resumable marks a waiting parent whose block completed but which
	// has not yet received a processor for its control-return.
	resumable bool
	// std marks a standard thread (§3.1): multitasked over free
	// processors rather than owning one. busyRem is its remaining work.
	std     bool
	busyRem int64
}

// TC is the context handed to a pal-thread body. Its methods are the
// simulated LoPRAM programming interface. A TC is only valid inside the body
// it was passed to, on the goroutine running that body.
type TC struct {
	m  *Machine
	th *thread
}

// Work declares that the thread performs units units of computation; the
// simulated clock charges one step per unit to the thread's processor.
// Non-positive units are a no-op.
func (tc *TC) Work(units int64) {
	if units <= 0 {
		return
	}
	tc.th.req = request{kind: reqWork, units: units}
	tc.th.yieldAndWait()
}

// Do executes a palthreads block: the children are created in the order
// given, the thread suspends at the block's implicit wait, and it resumes
// once every child has completed. An empty block is a no-op.
func (tc *TC) Do(children ...Func) {
	if len(children) == 0 {
		return
	}
	tc.th.req = request{kind: reqDo, children: children}
	tc.th.yieldAndWait()
}

// Spawn executes a "palthreads { ... } nowait" block: the children are
// created but the thread continues immediately. There is no join primitive;
// per §3.1 execution of the machine concludes when no threads remain, which
// is how Algorithm 1 terminates.
func (tc *TC) Spawn(children ...Func) {
	if len(children) == 0 {
		return
	}
	tc.th.req = request{kind: reqSpawn, children: children}
	tc.th.yieldAndWait()
}

// Now returns the current simulated time step.
func (tc *TC) Now() int64 { return tc.m.now }

// P returns the machine's processor count.
func (tc *TC) P() int { return tc.m.p }

// Proc returns the processor the thread is currently running on.
func (tc *TC) Proc() int { return tc.th.proc }

// ID returns the thread's id (creation order, root = 0).
func (tc *TC) ID() int { return tc.th.id }

// Path returns the thread's position in the activation tree as the sequence
// of child indices from the root. The root has an empty path. The returned
// slice must not be modified.
func (tc *TC) Path() []int32 { return tc.th.path }

func (t *thread) yieldAndWait() {
	t.yield <- struct{}{}
	<-t.resume
}

// start launches the thread body goroutine. The body runs only when the
// scheduler resumes it; when the body returns, a final reqDone is issued. A
// panic inside the body (including a CREW Abort-policy violation) is relayed
// to the scheduler, which fails the whole Run — the machine-level analogue
// of the paper's "suspension of execution".
func (t *thread) start(m *Machine, body Func) {
	go func() {
		<-t.resume
		defer func() {
			if r := recover(); r != nil {
				t.req = request{kind: reqPanic, panicVal: r}
				t.yield <- struct{}{}
			}
		}()
		body(&TC{m: m, th: t})
		t.req = request{kind: reqDone}
		t.yield <- struct{}{}
	}()
}
