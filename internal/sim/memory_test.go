package sim

import (
	"errors"
	"strings"
	"testing"

	"lopram/internal/crew"
)

func TestMemoryDisjointWritesLegal(t *testing.T) {
	m := New(Config{P: 4}).AttachMemory(16, crew.Record)
	m.MustRun(func(tc *TC) {
		tc.Do(
			func(tc *TC) { tc.Write(0, 10); tc.Work(1) },
			func(tc *TC) { tc.Write(1, 20); tc.Work(1) },
			func(tc *TC) { tc.Write(2, 30); tc.Work(1) },
		)
		if got := tc.Read(0) + tc.Read(1) + tc.Read(2); got != 60 {
			t.Errorf("sum = %d", got)
		}
	})
	if vs := m.Memory().Violations(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestMemoryConcurrentWriteDetected(t *testing.T) {
	// Two pal-threads write the same cell in the same step: the paper's
	// undefined behaviour, caught by the auditor.
	m := New(Config{P: 2}).AttachMemory(4, crew.Record)
	m.MustRun(func(tc *TC) {
		tc.Do(
			func(tc *TC) { tc.Write(0, 1); tc.Work(1) },
			func(tc *TC) { tc.Write(0, 2); tc.Work(1) },
		)
	})
	vs := m.Memory().Violations()
	if len(vs) != 1 || !vs[0].WriteWrite {
		t.Fatalf("violations = %v, want one write-write", vs)
	}
}

func TestMemoryConcurrentReadsLegal(t *testing.T) {
	// CREW: everyone may read the same cell simultaneously.
	m := New(Config{P: 4}).AttachMemory(4, crew.Record)
	m.MustRun(func(tc *TC) {
		tc.Write(0, 42)
		tc.Work(1) // move to the next step before the fan-out
		var kids []Func
		for i := 0; i < 4; i++ {
			kids = append(kids, func(tc *TC) {
				if tc.Read(0) != 42 {
					t.Error("bad read")
				}
				tc.Work(1)
			})
		}
		tc.Do(kids...)
	})
	if vs := m.Memory().Violations(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestMemorySequentialStepsNoConflict(t *testing.T) {
	// Writes separated by Work land in different epochs.
	m := New(Config{P: 2}).AttachMemory(4, crew.Record)
	m.MustRun(func(tc *TC) {
		tc.Do(
			func(tc *TC) { tc.Write(0, 1); tc.Work(2) },
			func(tc *TC) { tc.Work(1); tc.Write(0, 2); tc.Work(1) },
		)
	})
	if vs := m.Memory().Violations(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
	if got := m.Memory().Peek(0); got != 2 {
		t.Fatalf("final value = %d", got)
	}
}

func TestMemoryAbortPolicy(t *testing.T) {
	// Under the Abort policy a CREW violation suspends execution: Run
	// fails with an error wrapping ErrThreadPanic.
	m := New(Config{P: 2}).AttachMemory(4, crew.Abort)
	_, err := m.Run(func(tc *TC) {
		tc.Do(
			func(tc *TC) { tc.Write(0, 1); tc.Work(1) },
			func(tc *TC) { tc.Write(0, 2); tc.Work(1) },
		)
	})
	if err == nil || !errors.Is(err, ErrThreadPanic) {
		t.Fatalf("err = %v, want ErrThreadPanic", err)
	}
	if !strings.Contains(err.Error(), "write-write") {
		t.Fatalf("err = %v, want write-write detail", err)
	}
}

// TestBodyPanicBecomesError: any panic in a thread body is surfaced as a
// Run error rather than crashing the process.
func TestBodyPanicBecomesError(t *testing.T) {
	m := New(Config{P: 2})
	_, err := m.Run(func(tc *TC) {
		tc.Do(
			func(tc *TC) { tc.Work(1) },
			func(tc *TC) { panic("boom") },
		)
	})
	if err == nil || !errors.Is(err, ErrThreadPanic) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestMemoryUnattachedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without memory")
		}
	}()
	m := New(Config{P: 1})
	m.MustRun(func(tc *TC) { tc.Read(0) })
}

// TestMemoryTreeSum runs an audited tree-sum program: leaves write disjoint
// cells, each internal node combines its two children's cells after they
// finish — a complete CREW-legal reduction whose result and audit are both
// checked.
func TestMemoryTreeSum(t *testing.T) {
	const leaves = 8
	m := New(Config{P: 4}).AttachMemory(2*leaves, crew.Record)

	// Cell layout: heap order, root at 0, leaves at leaves-1..2*leaves-2.
	var node func(k int) Func
	node = func(k int) Func {
		return func(tc *TC) {
			if k >= leaves-1 { // leaf
				tc.Write(k, int64(k-leaves+2)) // values 1..leaves
				tc.Work(1)
				return
			}
			tc.Do(node(2*k+1), node(2*k+2))
			tc.Work(1) // the combine step occupies this thread's slot
			tc.Write(k, tc.Read(2*k+1)+tc.Read(2*k+2))
		}
	}
	m.MustRun(node(0))

	want := int64(leaves * (leaves + 1) / 2)
	if got := m.Memory().Peek(0); got != want {
		t.Fatalf("tree sum = %d, want %d", got, want)
	}
	if vs := m.Memory().Violations(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestMemoryStandardThreadsDistinctIDs(t *testing.T) {
	// Standard threads hold no processor; the auditor must still tell
	// them apart (distinct pseudo-processor ids).
	m := New(Config{P: 2}).AttachMemory(8, crew.Record)
	m.MustRun(func(tc *TC) {
		tc.Launch(
			func(tc *TC) { tc.Write(0, 1); tc.Work(1) },
			func(tc *TC) { tc.Write(1, 2); tc.Work(1) },
		)
	})
	if vs := m.Memory().Violations(); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}
