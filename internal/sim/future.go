package sim

// Futures: the §4.5 notification primitive. When a memoized thread probes a
// sub-problem that is already "in progress", "the thread registers a notify
// condition on solution … If not all the answers are available the thread
// enters a wait state until they become available." A Future is that notify
// condition: threads Await it (entering a wait state, releasing their
// processor) and the owning thread Resolves it exactly once, waking every
// waiter through the machine's control-return queue.
//
// Await and Resolve are scheduling actions, not work: they consume no
// simulated time beyond what the program declares with Work. The §4.6
// serialization cost of concurrent probes is the program's to charge
// (dp.SimOptions.CrewCounters shows the pattern).

// Future is a one-shot condition created inside a running thread via
// TC.NewFuture. It must only be used with the machine that created it.
type Future struct {
	resolved bool
	waiters  []*thread
}

// Resolved reports whether Resolve has been called.
func (f *Future) Resolved() bool { return f.resolved }

// NewFuture returns an unresolved future bound to the thread's machine.
func (tc *TC) NewFuture() *Future { return &Future{} }

// Resolve marks the future resolved and wakes all waiters. Resolving an
// already-resolved future panics (inside the thread body, so Run reports it
// as an ErrThreadPanic error): each sub-problem is solved exactly once.
func (tc *TC) Resolve(f *Future) {
	if f.resolved {
		panic("sim: future resolved twice")
	}
	tc.th.req = request{kind: reqResolve, fut: f}
	tc.th.yieldAndWait()
}

// Await blocks the thread until the future resolves. Awaiting a resolved
// future returns immediately.
func (tc *TC) Await(f *Future) {
	if f.resolved {
		return
	}
	tc.th.req = request{kind: reqAwait, fut: f}
	tc.th.yieldAndWait()
}

// handleResolve processes a reqResolve inside the scheduler. The
// double-resolve check happened in TC.Resolve on the thread's goroutine.
func (m *Machine) handleResolve(f *Future) {
	f.resolved = true
	for _, w := range f.waiters {
		if w.state == Waiting && !w.resumable {
			w.resumable = true
			m.resumables = append(m.resumables, w)
		}
	}
	f.waiters = nil
}
