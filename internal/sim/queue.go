package sim

import "container/heap"

// pendingQueue orders pending threads for global activation according to the
// machine's Policy. Threads activated through local handoff are lazily
// removed (marked and skipped at pop time), keeping both paths O(log n).
type pendingQueue struct {
	policy Policy
	h      threadHeap
}

func newPendingQueue(policy Policy) *pendingQueue {
	return &pendingQueue{policy: policy, h: threadHeap{policy: policy}}
}

func (q *pendingQueue) push(th *thread) {
	th.inQueue = true
	heap.Push(&q.h, th)
}

// pop returns the highest-priority thread still pending, or nil.
func (q *pendingQueue) pop() *thread {
	for q.h.Len() > 0 {
		th := heap.Pop(&q.h).(*thread)
		if th.inQueue && th.state == Pending {
			th.inQueue = false
			return th
		}
	}
	return nil
}

// remove lazily deletes th from the queue.
func (q *pendingQueue) remove(th *thread) { th.inQueue = false }

// empty reports whether no pending thread remains.
func (q *pendingQueue) empty() bool {
	for q.h.Len() > 0 {
		th := q.h.items[0]
		if th.inQueue && th.state == Pending {
			return false
		}
		heap.Pop(&q.h)
	}
	return true
}

type threadHeap struct {
	policy Policy
	items  []*thread
}

func (h *threadHeap) Len() int { return len(h.items) }

func (h *threadHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	switch h.policy {
	case FIFO:
		return a.seq < b.seq
	case LIFO:
		return a.seq > b.seq
	default: // Preorder
		return pathLess(a.path, b.path)
	}
}

func (h *threadHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *threadHeap) Push(x any) { h.items = append(h.items, x.(*thread)) }

func (h *threadHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// pathLess compares tree paths lexicographically; a prefix precedes its
// extensions, which is exactly preorder.
func pathLess(a, b []int32) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
