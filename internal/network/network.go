// Package network models the interconnect feasibility argument of the
// paper's introduction: "communication cost remains modest under the
// assumption of low-degree parallelism. Indeed with this bound in place a
// full processor network based on the complete graph is realizable."
//
// The model is deliberately simple — counting, not queueing theory: a
// topology determines the number of physical links, the diameter (worst
// point-to-point latency in hops), and the number of rounds needed for an
// all-to-all personalized exchange when each link moves one message per
// round in each direction. With p = O(log n) the complete graph needs only
// O(log² n) links and does everything in one hop; with the PRAM's p = Θ(n)
// it needs Θ(n²) links, which is what makes the classical model physically
// unrealistic (§2's criticism).
package network

import "fmt"

// Topology is a processor interconnect shape.
type Topology int

const (
	// Complete connects every processor pair directly.
	Complete Topology = iota
	// Ring connects processor i to i±1 (mod p).
	Ring
	// Hypercube connects processors differing in one bit of their index
	// (p must be a power of two).
	Hypercube
)

func (t Topology) String() string {
	switch t {
	case Complete:
		return "complete"
	case Ring:
		return "ring"
	case Hypercube:
		return "hypercube"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// Net is an interconnect over p processors.
type Net struct {
	P    int
	Kind Topology
}

// New returns the network, validating topology constraints.
func New(p int, kind Topology) (Net, error) {
	if p < 1 {
		return Net{}, fmt.Errorf("network: invalid processor count %d", p)
	}
	if kind == Hypercube && p&(p-1) != 0 {
		return Net{}, fmt.Errorf("network: hypercube needs a power-of-two p, got %d", p)
	}
	return Net{P: p, Kind: kind}, nil
}

// Links returns the number of physical links.
func (n Net) Links() int64 {
	p := int64(n.P)
	switch n.Kind {
	case Complete:
		return p * (p - 1) / 2
	case Ring:
		if p < 3 {
			return p - 1
		}
		return p
	case Hypercube:
		return p * int64(log2(n.P)) / 2
	}
	return 0
}

// Diameter returns the worst-case hop distance between two processors.
func (n Net) Diameter() int {
	switch n.Kind {
	case Complete:
		if n.P > 1 {
			return 1
		}
		return 0
	case Ring:
		return n.P / 2
	case Hypercube:
		return log2(n.P)
	}
	return 0
}

// Degree returns the per-processor link count.
func (n Net) Degree() int {
	switch n.Kind {
	case Complete:
		return n.P - 1
	case Ring:
		if n.P <= 2 {
			return n.P - 1
		}
		return 2
	case Hypercube:
		return log2(n.P)
	}
	return 0
}

// AllToAllRounds returns the number of communication rounds for an
// all-to-all personalized exchange (every processor sends one distinct
// message to every other), with each link carrying one message per round
// per direction.
//
//   - Complete: p−1 rounds (a round-robin pairing schedule; every pair has
//     its own link, so round r pairs i with i+r).
//   - Ring: Θ(p²) message-hops over 2p links ⇒ ⌈p²/4⌉-ish rounds; we use
//     the exact bisection bound ⌈(p/2)·(p/2)⌉ / 1 links across the cut …
//     conservatively (p²+3)/4 rounds.
//   - Hypercube: p/2 messages cross each dimension; p−1 rounds suffice with
//     standard dimension-ordered routing for permutations applied p−1 times
//     … we report (p−1)·1 rounds times the dimension count bound log p.
//
// The exact constants are not the point; the orders are, and the tests pin
// them.
func (n Net) AllToAllRounds() int64 {
	p := int64(n.P)
	if p <= 1 {
		return 0
	}
	switch n.Kind {
	case Complete:
		return p - 1
	case Ring:
		// Bisection: p²/4 messages must cross 2 links.
		return (p*p + 7) / 8
	case Hypercube:
		// log p phases, each a shuffle of p/2 messages per dimension
		// pipelined: (p-1) rounds per phase is the naive bound.
		return (p - 1) * int64(log2(n.P))
	}
	return 0
}

// Feasibility summarises the wiring cost of equipping a machine with the
// topology at a given processor count — the table behind the paper's
// realizability claim.
type Feasibility struct {
	P        int
	Links    int64
	Degree   int
	Diameter int
	AllToAll int64
}

// Feasible returns the feasibility summary.
func (n Net) Feasible() Feasibility {
	return Feasibility{
		P:        n.P,
		Links:    n.Links(),
		Degree:   n.Degree(),
		Diameter: n.Diameter(),
		AllToAll: n.AllToAllRounds(),
	}
}

// CompareModels contrasts the complete-graph wiring cost of a LoPRAM
// (p = ⌊log₂ n⌋) against a classical PRAM (p = n) for the same input size.
func CompareModels(n int) (lopram, pram Feasibility) {
	pl := log2(n)
	if pl < 1 {
		pl = 1
	}
	l, _ := New(pl, Complete)
	c, _ := New(n, Complete)
	return l.Feasible(), c.Feasible()
}

func log2(v int) int {
	l := 0
	for v > 1 {
		v >>= 1
		l++
	}
	return l
}
