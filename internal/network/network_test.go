package network

import "testing"

func TestCompleteGraphCounts(t *testing.T) {
	n, err := New(8, Complete)
	if err != nil {
		t.Fatal(err)
	}
	if n.Links() != 28 {
		t.Fatalf("links = %d, want 28", n.Links())
	}
	if n.Degree() != 7 || n.Diameter() != 1 {
		t.Fatalf("degree %d diameter %d", n.Degree(), n.Diameter())
	}
	if n.AllToAllRounds() != 7 {
		t.Fatalf("all-to-all = %d, want 7", n.AllToAllRounds())
	}
}

func TestRingCounts(t *testing.T) {
	n, _ := New(8, Ring)
	if n.Links() != 8 || n.Degree() != 2 || n.Diameter() != 4 {
		t.Fatalf("ring: %+v", n.Feasible())
	}
	if n.AllToAllRounds() <= int64(8-1) {
		t.Fatal("ring all-to-all should exceed complete graph's")
	}
}

func TestHypercubeCounts(t *testing.T) {
	n, err := New(16, Hypercube)
	if err != nil {
		t.Fatal(err)
	}
	if n.Links() != 32 { // p·log(p)/2 = 16·4/2
		t.Fatalf("links = %d, want 32", n.Links())
	}
	if n.Degree() != 4 || n.Diameter() != 4 {
		t.Fatalf("hypercube: %+v", n.Feasible())
	}
}

func TestHypercubeRejectsNonPow2(t *testing.T) {
	if _, err := New(12, Hypercube); err == nil {
		t.Fatal("p=12 hypercube accepted")
	}
}

func TestNewRejectsBadP(t *testing.T) {
	if _, err := New(0, Complete); err == nil {
		t.Fatal("p=0 accepted")
	}
}

// TestRealizabilityClaim is the paper's §1 argument in numbers: full
// connectivity for p = O(log n) costs O(log² n) links while the PRAM's
// p = Θ(n) needs Θ(n²).
func TestRealizabilityClaim(t *testing.T) {
	for _, n := range []int{1 << 10, 1 << 20} {
		lop, pr := CompareModels(n)
		if lop.Links > int64(lop.P*lop.P) {
			t.Fatalf("n=%d: LoPRAM links %d exceed p²", n, lop.Links)
		}
		if pr.Links < int64(n)*int64(n)/4 {
			t.Fatalf("n=%d: PRAM links %d not Θ(n²)", n, pr.Links)
		}
		ratio := float64(pr.Links) / float64(lop.Links)
		if ratio < 1e4 {
			t.Fatalf("n=%d: wiring gap only %.0f×", n, ratio)
		}
	}
}

func TestDegenerateSizes(t *testing.T) {
	one, _ := New(1, Complete)
	if one.Links() != 0 || one.Diameter() != 0 || one.AllToAllRounds() != 0 {
		t.Fatalf("p=1: %+v", one.Feasible())
	}
	two, _ := New(2, Ring)
	if two.Links() != 1 || two.Degree() != 1 {
		t.Fatalf("p=2 ring: %+v", two.Feasible())
	}
}

func TestTopologyStrings(t *testing.T) {
	if Complete.String() != "complete" || Ring.String() != "ring" || Hypercube.String() != "hypercube" {
		t.Fatal("topology names")
	}
}
