module lopram

go 1.24
