module lopram

go 1.23
