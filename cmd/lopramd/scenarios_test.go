package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"lopram/internal/jobqueue"
)

// TestCatalogueEndpointsEncodeArrays: GET /v1/scenarios and
// /v1/algorithms must encode as JSON arrays even when empty — a nil
// slice marshals to null and breaks strict clients.
func TestCatalogueEndpointsEncodeArrays(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	for _, path := range []string{"/v1/scenarios", "/v1/algorithms"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
		trimmed := bytes.TrimSpace(body)
		if len(trimmed) == 0 || trimmed[0] != '[' {
			t.Errorf("GET %s body is not array-typed: %.80s", path, trimmed)
		}
		var out []map[string]any
		if err := json.Unmarshal(body, &out); err != nil {
			t.Errorf("GET %s: %v", path, err)
		}
	}
}

// scenarioEventLine mirrors the one-of NDJSON event shape for decoding
// in tests.
type scenarioEventLine struct {
	Progress *json.RawMessage `json:"progress"`
	Record   *json.RawMessage `json:"record"`
	Report   *json.RawMessage `json:"report"`
	Error    string           `json:"error"`
}

// TestScenarioRunStreams: POST /v1/scenarios/run with a posted spec and
// ?trace=1 streams NDJSON with one record event per submission and
// exactly one final report event.
func TestScenarioRunStreams(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	spec := `{"name":"post-test","seed":11,"jobs":24,"clients":4,"dup_fraction":0.5,"seed_space":2,
		"mix":[{"engine":"sim","max_n":64}],"shards":1,"workers":2}`
	resp, err := http.Post(srv.URL+"/v1/scenarios/run?trace=1&progress_ms=5", "application/json",
		strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q, want application/x-ndjson", ct)
	}
	var records, reports, progress int
	var lastLine string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		lastLine = line
		var ev scenarioEventLine
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		switch {
		case ev.Error != "":
			t.Fatalf("stream reported error: %s", ev.Error)
		case ev.Record != nil:
			records++
		case ev.Report != nil:
			reports++
		case ev.Progress != nil:
			progress++
		default:
			t.Fatalf("event with no payload: %s", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if records != 24 {
		t.Errorf("streamed %d record events, want one per submission (24)", records)
	}
	if reports != 1 {
		t.Errorf("streamed %d report events, want exactly 1", reports)
	}
	if progress == 0 {
		t.Error("no progress events at a 5ms interval")
	}
	var last scenarioEventLine
	if err := json.Unmarshal([]byte(lastLine), &last); err != nil || last.Report == nil {
		t.Errorf("final stream line is not the report: %s", lastLine)
	}
}

// TestScenarioRunBuiltinCapsJobs: POST /v1/scenarios/{name}/run honours
// ?jobs as a cap on the builtin's stream length.
func TestScenarioRunBuiltinCapsJobs(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/scenarios/cache-friendly-repeat/run?jobs=10&trace=1&progress_ms=5",
		"application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, body)
	}
	var records int
	var reportSeen bool
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var ev scenarioEventLine
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if ev.Record != nil {
			records++
		}
		if ev.Report != nil {
			reportSeen = true
			var rep struct {
				Jobs int `json:"jobs"`
			}
			if err := json.Unmarshal(*ev.Report, &rep); err != nil {
				t.Fatal(err)
			}
			if rep.Jobs != 10 {
				t.Errorf("report jobs %d, want capped 10", rep.Jobs)
			}
		}
	}
	if records != 10 {
		t.Errorf("%d record events, want 10", records)
	}
	if !reportSeen {
		t.Error("no report event")
	}
}

// TestScenarioRunUnknownName: a name outside the catalogue is 404 with
// a JSON error, before any stream starts.
func TestScenarioRunUnknownName(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/scenarios/nope/run", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestScenarioRunInvalidSpec: a posted spec that fails validation is
// 400, not a stream that errors midway.
func TestScenarioRunInvalidSpec(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/scenarios/run", "application/json",
		strings.NewReader(`{"name":"broken","jobs":-4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
}
