package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lopram/internal/jobqueue"
)

func testServer(t *testing.T, cfg jobqueue.Config) (*httptest.Server, *jobqueue.Queue) {
	t.Helper()
	q := jobqueue.New(cfg)
	t.Cleanup(q.Close)
	srv := httptest.NewServer(newMux(q))
	t.Cleanup(srv.Close)
	return srv, q
}

// TestSubmitUnknownPriorityHTTP is the HTTP-layer regression test for
// unknown priority classes: 400, never silently mapped, with the valid
// class list in the error body.
func TestSubmitUnknownPriorityHTTP(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"carrier-pigeon"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"carrier-pigeon", "valid classes", "interactive", "batch"} {
		if !strings.Contains(body.Error, want) {
			t.Errorf("error body %q missing %q", body.Error, want)
		}
	}
}

// TestClassesEndpoint: GET /v1/classes serves the configured set in
// dequeue order, default and custom.
func TestClassesEndpoint(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1, Classes: jobqueue.ClassSet{
		{Name: "gold", Weight: jobqueue.WeightStrict},
		{Name: "silver", Weight: 2, Quota: 0.5},
	}})
	resp, err := http.Get(srv.URL + "/v1/classes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var classes jobqueue.ClassSet
	if err := json.NewDecoder(resp.Body).Decode(&classes); err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 || classes[0].Name != "gold" || classes[1].Weight != 2 || classes[1].Quota != 0.5 {
		t.Fatalf("classes = %+v, want the configured gold/silver set", classes)
	}

	// A submit naming a configured custom class is accepted; the old
	// default names are now rejected.
	ok, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"silver"}`))
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusAccepted && ok.StatusCode != http.StatusOK {
		t.Fatalf("silver submit status = %d, want 202/200", ok.StatusCode)
	}
	bad, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"interactive"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("interactive submit against custom set: status = %d, want 400", bad.StatusCode)
	}
}

// TestMetricsCarryClasses: /v1/metrics includes the class set and the
// per-class stat split keyed by the configured names.
func TestMetricsCarryClasses(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Classes  jobqueue.ClassSet          `json:"classes"`
		PerClass map[string]json.RawMessage `json:"per_class"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 || m.Classes[0].Name != jobqueue.ClassInteractive {
		t.Errorf("metrics classes = %+v, want the default set", m.Classes)
	}
	if _, ok := m.PerClass["interactive"]; !ok {
		t.Errorf("per_class missing interactive: %v", m.PerClass)
	}
}

// TestResizeEndpoint: POST /v1/resize swaps the placement table live,
// reports the new epoch, and /v1/metrics reflects it; malformed and
// out-of-bounds targets are 400s.
func TestResizeEndpoint(t *testing.T) {
	srv, q := testServer(t, jobqueue.Config{Workers: 2, Shards: 1})
	resp, err := http.Post(srv.URL+"/v1/resize", "application/json", strings.NewReader(`{"shards":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Epoch  uint64 `json:"epoch"`
		Shards int    `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Epoch != 2 || body.Shards != 4 {
		t.Fatalf("resize response = %+v, want epoch 2 / 4 shards", body)
	}
	if q.NumShards() != 4 {
		t.Fatalf("queue has %d shards after resize, want 4", q.NumShards())
	}

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m struct {
		Epoch    uint64                `json:"epoch"`
		Shards   int                   `json:"shards"`
		PerShard []jobqueue.ShardStats `json:"per_shard"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 2 || m.Shards != 4 || len(m.PerShard) != 4 {
		t.Errorf("metrics = epoch %d shards %d per_shard %d, want 2/4/4", m.Epoch, m.Shards, len(m.PerShard))
	}

	for _, bad := range []string{`{"shards":0}`, `{"shards":1000}`, `not json`} {
		resp, err := http.Post(srv.URL+"/v1/resize", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("resize %q: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestParseAutoscale: the -autoscale flag syntax, defaults and rejects.
func TestParseAutoscale(t *testing.T) {
	cfg, err := parseAutoscale("1:8")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Min != 1 || cfg.Max != 8 || cfg.Interval != 0 {
		t.Errorf("parseAutoscale(1:8) = %+v", cfg)
	}
	cfg, err = parseAutoscale("2:16:100ms:4:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Min != 2 || cfg.Max != 16 || cfg.Interval != 100*time.Millisecond ||
		cfg.ImbalanceHigh != 4 || cfg.ImbalanceLow != 0.5 {
		t.Errorf("parseAutoscale(full) = %+v", cfg)
	}
	for _, bad := range []string{"", "3", "a:b", "1:8:fast", "8:1", "1:8:1s:2", "1:8:1s:0.5:4", "1:8:1s:4:0.5:x"} {
		if _, err := parseAutoscale(bad); err == nil {
			t.Errorf("parseAutoscale(%q) accepted, want error", bad)
		}
	}
}
