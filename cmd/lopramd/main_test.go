package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lopram/internal/jobqueue"
)

func testServer(t *testing.T, cfg jobqueue.Config) (*httptest.Server, *jobqueue.Queue) {
	t.Helper()
	q := jobqueue.New(cfg)
	t.Cleanup(q.Close)
	srv := httptest.NewServer(newMux(q))
	t.Cleanup(srv.Close)
	return srv, q
}

// TestSubmitUnknownPriorityHTTP is the HTTP-layer regression test for
// unknown priority classes: 400, never silently mapped, with the valid
// class list in the error body.
func TestSubmitUnknownPriorityHTTP(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"carrier-pigeon"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"carrier-pigeon", "valid classes", "interactive", "batch"} {
		if !strings.Contains(body.Error, want) {
			t.Errorf("error body %q missing %q", body.Error, want)
		}
	}
}

// TestClassesEndpoint: GET /v1/classes serves the configured set in
// dequeue order, default and custom.
func TestClassesEndpoint(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1, Classes: jobqueue.ClassSet{
		{Name: "gold", Weight: jobqueue.WeightStrict},
		{Name: "silver", Weight: 2, Quota: 0.5},
	}})
	resp, err := http.Get(srv.URL + "/v1/classes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var classes jobqueue.ClassSet
	if err := json.NewDecoder(resp.Body).Decode(&classes); err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 || classes[0].Name != "gold" || classes[1].Weight != 2 || classes[1].Quota != 0.5 {
		t.Fatalf("classes = %+v, want the configured gold/silver set", classes)
	}

	// A submit naming a configured custom class is accepted; the old
	// default names are now rejected.
	ok, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"silver"}`))
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusAccepted && ok.StatusCode != http.StatusOK {
		t.Fatalf("silver submit status = %d, want 202/200", ok.StatusCode)
	}
	bad, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"interactive"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("interactive submit against custom set: status = %d, want 400", bad.StatusCode)
	}
}

// TestMetricsCarryClasses: /v1/metrics includes the class set and the
// per-class stat split keyed by the configured names.
func TestMetricsCarryClasses(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Classes  jobqueue.ClassSet          `json:"classes"`
		PerClass map[string]json.RawMessage `json:"per_class"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 || m.Classes[0].Name != jobqueue.ClassInteractive {
		t.Errorf("metrics classes = %+v, want the default set", m.Classes)
	}
	if _, ok := m.PerClass["interactive"]; !ok {
		t.Errorf("per_class missing interactive: %v", m.PerClass)
	}
}
