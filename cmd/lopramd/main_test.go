package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lopram/internal/jobqueue"
)

func testServer(t *testing.T, cfg jobqueue.Config) (*httptest.Server, *jobqueue.Queue) {
	t.Helper()
	q := jobqueue.New(cfg)
	t.Cleanup(q.Close)
	srv := httptest.NewServer(newMux(q))
	t.Cleanup(srv.Close)
	return srv, q
}

// TestSubmitUnknownPriorityHTTP is the HTTP-layer regression test for
// unknown priority classes: 400, never silently mapped, with the valid
// class list in the error body.
func TestSubmitUnknownPriorityHTTP(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"carrier-pigeon"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"carrier-pigeon", "valid classes", "interactive", "batch"} {
		if !strings.Contains(body.Error, want) {
			t.Errorf("error body %q missing %q", body.Error, want)
		}
	}
}

// TestClassesEndpoint: GET /v1/classes serves the configured set in
// dequeue order, default and custom.
func TestClassesEndpoint(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1, Classes: jobqueue.ClassSet{
		{Name: "gold", Weight: jobqueue.WeightStrict},
		{Name: "silver", Weight: 2, Quota: 0.5},
	}})
	resp, err := http.Get(srv.URL + "/v1/classes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var classes jobqueue.ClassSet
	if err := json.NewDecoder(resp.Body).Decode(&classes); err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 || classes[0].Name != "gold" || classes[1].Weight != 2 || classes[1].Quota != 0.5 {
		t.Fatalf("classes = %+v, want the configured gold/silver set", classes)
	}

	// A submit naming a configured custom class is accepted; the old
	// default names are now rejected.
	ok, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"silver"}`))
	if err != nil {
		t.Fatal(err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusAccepted && ok.StatusCode != http.StatusOK {
		t.Fatalf("silver submit status = %d, want 202/200", ok.StatusCode)
	}
	bad, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"interactive"}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("interactive submit against custom set: status = %d, want 400", bad.StatusCode)
	}
}

// TestMetricsCarryClasses: /v1/metrics includes the class set and the
// per-class stat split keyed by the configured names.
func TestMetricsCarryClasses(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Classes  jobqueue.ClassSet          `json:"classes"`
		PerClass map[string]json.RawMessage `json:"per_class"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 || m.Classes[0].Name != jobqueue.ClassInteractive {
		t.Errorf("metrics classes = %+v, want the default set", m.Classes)
	}
	if _, ok := m.PerClass["interactive"]; !ok {
		t.Errorf("per_class missing interactive: %v", m.PerClass)
	}
}

// TestResizeEndpoint: POST /v1/resize swaps the placement table live,
// reports the new epoch, and /v1/metrics reflects it; malformed and
// out-of-bounds targets are 400s.
func TestResizeEndpoint(t *testing.T) {
	srv, q := testServer(t, jobqueue.Config{Workers: 2, Shards: 1})
	resp, err := http.Post(srv.URL+"/v1/resize", "application/json", strings.NewReader(`{"shards":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Epoch  uint64 `json:"epoch"`
		Shards int    `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Epoch != 2 || body.Shards != 4 {
		t.Fatalf("resize response = %+v, want epoch 2 / 4 shards", body)
	}
	if q.NumShards() != 4 {
		t.Fatalf("queue has %d shards after resize, want 4", q.NumShards())
	}

	mresp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m struct {
		Epoch    uint64                `json:"epoch"`
		Shards   int                   `json:"shards"`
		PerShard []jobqueue.ShardStats `json:"per_shard"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 2 || m.Shards != 4 || len(m.PerShard) != 4 {
		t.Errorf("metrics = epoch %d shards %d per_shard %d, want 2/4/4", m.Epoch, m.Shards, len(m.PerShard))
	}

	for _, bad := range []string{`{"shards":0}`, `{"shards":1000}`, `not json`} {
		resp, err := http.Post(srv.URL+"/v1/resize", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("resize %q: status = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// errEnvelope decodes the uniform JSON error envelope and fails the test
// if either field is missing — every error response must carry both.
func errEnvelope(t *testing.T, resp *http.Response) (msg, code string) {
	t.Helper()
	var body struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error response is not the JSON envelope: %v", err)
	}
	if body.Error == "" || body.Code == "" {
		t.Fatalf("error envelope incomplete: %+v", body)
	}
	return body.Error, body.Code
}

// TestErrorEnvelope: every error path answers with the uniform
// {"error": ..., "code": ...} envelope, the right status, and the right
// machine-readable code — the daemon's 400/404 surface in one table.
func TestErrorEnvelope(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantInMsg  []string
	}{
		{name: "bad-job-body", method: "POST", path: "/v1/jobs", body: `{not json`,
			wantStatus: 400, wantCode: "bad_request"},
		{name: "unknown-class", method: "POST", path: "/v1/jobs",
			body:       `{"algorithm":"reduce","n":64,"p":2,"engine":"sim","priority":"carrier-pigeon"}`,
			wantStatus: 400, wantCode: "unknown_class",
			wantInMsg: []string{"carrier-pigeon", "interactive", "batch"}},
		{name: "bad-job-id", method: "GET", path: "/v1/jobs/not-a-number",
			wantStatus: 400, wantCode: "bad_request"},
		{name: "job-not-found", method: "GET", path: "/v1/jobs/999999999",
			wantStatus: 404, wantCode: "not_found"},
		{name: "scenario-not-found", method: "GET", path: "/v1/scenarios/no-such-scenario",
			wantStatus: 404, wantCode: "not_found"},
		{name: "scenario-run-not-found", method: "POST", path: "/v1/scenarios/no-such-scenario/run",
			wantStatus: 404, wantCode: "not_found"},
		{name: "bad-resize", method: "POST", path: "/v1/resize", body: `{"shards":0}`,
			wantStatus: 400, wantCode: "bad_request"},
		{name: "unknown-dequeue-policy", method: "POST", path: "/v1/scenarios/run",
			body:       `{"name":"probe","jobs":1,"dequeue_policy":"wfq"}`,
			wantStatus: 400, wantCode: "unknown_policy",
			wantInMsg: []string{"wfq", "default", "fcfs", "sjf", "edf"}},
		{name: "unknown-admission-policy", method: "POST", path: "/v1/scenarios/run",
			body:       `{"name":"probe","jobs":1,"admission_policy":"leaky-bucket"}`,
			wantStatus: 400, wantCode: "unknown_policy",
			wantInMsg: []string{"leaky-bucket", "token-bucket"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			msg, code := errEnvelope(t, resp)
			if code != tc.wantCode {
				t.Errorf("code = %q, want %q", code, tc.wantCode)
			}
			for _, want := range tc.wantInMsg {
				if !strings.Contains(msg, want) {
					t.Errorf("error %q missing %q", msg, want)
				}
			}
		})
	}
}

// TestQueueFullEnvelope: saturation is a retryable 429 with code
// "queue_full", not a 503 — one worker blocked, a one-slot lane filled,
// and the next submit refused.
func TestQueueFullEnvelope(t *testing.T) {
	srv, q := testServer(t, jobqueue.Config{Workers: 1, Shards: 1, QueueDepth: 1, CacheSize: -1})
	gate := make(chan struct{})
	defer close(gate)
	var running sync.WaitGroup
	running.Add(1)
	if _, err := q.SubmitFunc("blocker", func(context.Context) error {
		running.Done()
		<-gate
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	running.Wait()

	submit := func(seed int) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
			strings.NewReader(fmt.Sprintf(`{"algorithm":"reduce","n":64,"p":2,"engine":"sim","seed":%d}`, seed)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	first := submit(1)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit status = %d, want 202", first.StatusCode)
	}
	second := submit(2)
	defer second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit into a full lane: status = %d, want 429", second.StatusCode)
	}
	if _, code := errEnvelope(t, second); code != "queue_full" {
		t.Errorf("code = %q, want queue_full", code)
	}
}

// TestScenarioRunConflict: a second concurrent scenario run is refused
// with 409 and code "conflict" while the first still streams.
func TestScenarioRunConflict(t *testing.T) {
	srv, _ := testServer(t, jobqueue.Config{Workers: 1})
	// A deliberately long run: one worker, one client, a hundred thousand
	// distinct heavy jobs. It is cancelled via the request context as
	// soon as the conflict is observed.
	spec := `{"name":"hog","jobs":100000,"workers":1,"clients":1,"seed_space":1000000,
		"mix":[{"algorithm":"mergesort","engine":"sim","min_n":65536,"max_n":65536}]}`
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", srv.URL+"/v1/scenarios/run", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	// The handler writes the 200 header only after it holds the run slot,
	// so once this response arrives the slot is provably occupied.
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run status = %d, want 200", resp.StatusCode)
	}

	second, err := http.Post(srv.URL+"/v1/scenarios/run", "application/json",
		strings.NewReader(`{"name":"probe","jobs":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent run status = %d, want 409", second.StatusCode)
	}
	if _, code := errEnvelope(t, second); code != "conflict" {
		t.Errorf("code = %q, want conflict", code)
	}
}

// TestPoliciesEndpoint: GET /v1/policies reports the active pair and the
// full registries, for the default and a non-default configuration.
func TestPoliciesEndpoint(t *testing.T) {
	get := func(t *testing.T, srv *httptest.Server) (body struct {
		Dequeue            string   `json:"dequeue"`
		Admission          string   `json:"admission"`
		AvailableDequeue   []string `json:"available_dequeue"`
		AvailableAdmission []string `json:"available_admission"`
	}) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/policies")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}
	t.Run("default", func(t *testing.T) {
		srv, _ := testServer(t, jobqueue.Config{Workers: 1})
		got := get(t, srv)
		if got.Dequeue != "default" || got.Admission != "default" {
			t.Errorf("active policies = %q/%q, want default/default", got.Dequeue, got.Admission)
		}
		if len(got.AvailableDequeue) == 0 || len(got.AvailableAdmission) == 0 {
			t.Errorf("registries missing: %+v", got)
		}
	})
	t.Run("selected", func(t *testing.T) {
		srv, _ := testServer(t, jobqueue.Config{Workers: 1,
			Policies: jobqueue.Policies{Dequeue: "sjf", Admission: "token-bucket:64:16"}})
		got := get(t, srv)
		if got.Dequeue != "sjf" || got.Admission != "token-bucket" {
			t.Errorf("active policies = %q/%q, want sjf/token-bucket", got.Dequeue, got.Admission)
		}
	})
}

// TestDebugMux: the -pprof listener serves the pprof index and the named
// profiles (mutex/block included, which the -mutex-profile-fraction and
// -block-profile-rate flags feed), and serves nothing but /debug/pprof —
// in particular none of the /v1 API, which stays on the public listener.
func TestDebugMux(t *testing.T) {
	srv := httptest.NewServer(newDebugMux())
	defer srv.Close()
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/goroutine",
		"/debug/pprof/heap",
		"/debug/pprof/mutex",
		"/debug/pprof/block",
		"/debug/pprof/cmdline",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/metrics on the debug listener = %d, want 404", resp.StatusCode)
	}
}

// TestParseAutoscale: the -autoscale flag syntax, defaults and rejects.
func TestParseAutoscale(t *testing.T) {
	cfg, err := parseAutoscale("1:8")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Min != 1 || cfg.Max != 8 || cfg.Interval != 0 {
		t.Errorf("parseAutoscale(1:8) = %+v", cfg)
	}
	cfg, err = parseAutoscale("2:16:100ms:4:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Min != 2 || cfg.Max != 16 || cfg.Interval != 100*time.Millisecond ||
		cfg.ImbalanceHigh != 4 || cfg.ImbalanceLow != 0.5 {
		t.Errorf("parseAutoscale(full) = %+v", cfg)
	}
	for _, bad := range []string{"", "3", "a:b", "1:8:fast", "8:1", "1:8:1s:2", "1:8:1s:0.5:4", "1:8:1s:4:0.5:x"} {
		if _, err := parseAutoscale(bad); err == nil {
			t.Errorf("parseAutoscale(%q) accepted, want error", bad)
		}
	}
}
