// Command lopramd is the LoPRAM simulation-job dispatch daemon: it serves
// concurrent "run algorithm A at size n with p processors on engine E"
// requests over HTTP/JSON, scheduling them across a sharded bounded
// worker pool with idle-shard work stealing, per-priority-class admission
// control and an LRU result cache (internal/jobqueue). See
// ARCHITECTURE.md for the layer diagram and docs/API.md for the full
// HTTP reference.
//
// Serve mode (default). -classes replaces the default interactive/batch
// priority pair with an arbitrary weighted class set (strict classes
// drain first; weighted classes share dequeues in proportion to weight);
// -shards is only the starting shard count — the placement table resizes
// live via POST /v1/resize, or continuously when -autoscale enables the
// contention-driven controller:
//
//	lopramd -addr :8080 -workers 8 -shards 4
//	lopramd -classes gold:strict:1,silver:2:0.5,bronze:1:0.25
//	lopramd -autoscale 1:8            # grow/shrink shards between 1 and 8
//	lopramd -autoscale 1:8:100ms:4:0.5
//
// -dequeue-policy and -admission-policy swap the queue's decision layer
// (default, fcfs, sjf, edf / default, token-bucket[:RATE[:BURST]]); the
// defaults are byte-identical to the pre-policy daemon:
//
//	lopramd -dequeue-policy sjf -admission-policy token-bucket:64:16
//
// -pprof starts a second, debug-only HTTP listener serving the standard
// net/http/pprof surface (profiles stay off the public API port). With
// -mutex-profile-fraction and -block-profile-rate the runtime samples
// lock contention and blocking, which is how the queue's completion path
// is profiled under load; /v1/metrics reports the cumulative
// runtime_mutex_wait_seconds either way:
//
//	lopramd -pprof localhost:6060 -mutex-profile-fraction 100
//	go tool pprof http://localhost:6060/debug/pprof/mutex
//
//	POST /v1/jobs               {"algorithm":"mergesort","n":65536,"engine":"sim","seed":7}
//	                            ?wait=1 blocks until the job settles
//	POST /v1/jobs:batch         a JSON array of specs through the pooled
//	                            batch ingest path; answers with one
//	                            result array once every job settles
//	POST /v1/jobs:stream        persistent NDJSON submit connection: one
//	                            spec per line in, one indexed result
//	                            line out (micro-batched)
//	GET  /v1/jobs/{id}          job status + result; ?wait=1 blocks until done
//	GET  /v1/jobs?limit=50      recent jobs, newest first
//	POST /v1/resize             {"shards":4} — live placement-table resize
//	GET  /v1/algorithms         the catalogue: algorithm → supported engines
//	GET  /v1/classes            the configured priority-class set
//	                            (name, weight, quota, default deadline)
//	GET  /v1/policies           the active dequeue/admission policies and
//	                            the available policy names
//	GET  /v1/scenarios          the built-in load-scenario catalogue
//	GET  /v1/scenarios/{name}   one scenario's full declarative spec
//	POST /v1/scenarios/{name}/run  execute a builtin against a sandboxed
//	                            queue, streaming NDJSON progress +
//	                            final report (?trace=1 adds per-job
//	                            completion records, ?jobs=N caps the
//	                            stream, ?progress_ms=N the interval)
//	POST /v1/scenarios/run      the same for a posted scenario spec
//	GET  /v1/metrics            serving statistics (placement epoch,
//	                            per-shard table, per-class latency
//	                            percentiles, hit rate, per-shard steals,
//	                            palrt work-stealing scheduler counters)
//	GET  /healthz               liveness
//
// Every error response is the uniform JSON envelope {"error": <message>,
// "code": <machine-readable code>} — see docs/API.md for the code table.
//
// -trace-out attaches the flight recorder in serve or scenario mode:
// every job the queue settles or refuses appends one JSONL completion
// record (see internal/jobtrace) to the file, and cmd/tracediff
// compares two such traces as a replay A/B gate:
//
//	lopramd -scenario cache-friendly-repeat -trace-out head.jsonl
//
// Scenario mode replays a declarative load scenario (a built-in name or a
// JSON spec file) through a fresh queue and prints the serving report
// with per-priority-class latency percentiles — the load-test harness:
//
//	lopramd -scenario priority-inversion-probe
//	lopramd -scenario my-traffic.json -workers 8 -shards 4
//	lopramd -list-scenarios
//
// Batch mode replays a synthetic mixed workload through the same queue
// and prints a serving report (the pre-scenario harness, kept for quick
// ad-hoc smoke loads):
//
//	lopramd -batch 100 -workers 8 -seed 42 -dup 0.3
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lopram/internal/core"
	"lopram/internal/jobqueue"
	"lopram/internal/jobtrace"
	"lopram/internal/lopramhttp"
	"lopram/internal/scenario"
	"lopram/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "serve mode: HTTP listen address")
		workers    = flag.Int("workers", 0, "total worker count across shards (0 = one per hardware core)")
		shards     = flag.Int("shards", 0, "queue shards (0 = 1; placement is by spec-key hash)")
		queueDepth = flag.Int("queue-depth", 1024, "base admission capacity across all shards (each priority class rides in its own quota×depth lane)")
		batchShare = flag.Float64("batch-share", 0.5, "admission quota of the default class set's batch lane, as a fraction of -queue-depth (ignored when -classes is set)")
		classesCSV = flag.String("classes", "", `priority classes as name:weight[:quota],... — weight "strict" or an integer (dequeue share), quota in (0,1] (admission lane fraction, default 1); empty keeps the default interactive:strict:1,batch:1:<batch-share>`)
		cacheSize  = flag.Int("cache", 512, "LRU result cache entries across all shards (-1 disables)")
		timeout    = flag.Duration("timeout", 60*time.Second, "default per-job deadline")
		batch      = flag.Int("batch", 0, "batch mode: run this many synthetic jobs and exit")
		seed       = flag.Uint64("seed", 1, "batch mode: workload seed")
		dup        = flag.Float64("dup", 0.3, "batch mode: fraction of jobs that duplicate an earlier spec (exercises the cache)")
		algos      = flag.String("algorithms", "", "batch mode: comma-separated algorithm subset (default: full catalogue)")
		autoscaleS = flag.String("autoscale", "", `serve mode: contention-driven shard autoscaling as min:max[:interval[:high[:low]]] (e.g. "1:8" or "1:8:250ms:4:0.5"); empty keeps the shard count fixed unless POST /v1/resize moves it`)
		deqPolicy  = flag.String("dequeue-policy", "", `dequeue policy: default (strict-then-DWRR), fcfs, sjf (predicted-cost shortest job first) or edf (earliest deadline first); empty keeps the default`)
		admPolicy  = flag.String("admission-policy", "", `admission policy: default (static lane quotas) or token-bucket[:RATE[:BURST]] (per-class rate limit + deadline-infeasibility shedding); empty keeps the default`)
		scenarioID = flag.String("scenario", "", "scenario mode: replay a built-in scenario by name, or a JSON spec file by path, and exit")
		listScen   = flag.Bool("list-scenarios", false, "print the built-in scenario catalogue and exit")
		traceOut   = flag.String("trace-out", "", "attach the flight recorder and write one JSONL completion record per job to this file (serve and scenario modes)")
		pprofAddr  = flag.String("pprof", "", `debug listen address for net/http/pprof (e.g. "localhost:6060"); empty disables the profiling listener (all modes)`)
		mutexFrac  = flag.Int("mutex-profile-fraction", 0, "sample 1/N of mutex contention events for /debug/pprof/mutex (runtime.SetMutexProfileFraction; 0 keeps sampling off)")
		blockRate  = flag.Int("block-profile-rate", 0, "sample blocking events of at least N ns for /debug/pprof/block (runtime.SetBlockProfileRate; 0 keeps sampling off)")
	)
	flag.Parse()
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })

	cfg := jobqueue.Config{
		Workers:        *workers,
		Shards:         *shards,
		QueueDepth:     *queueDepth,
		BatchShare:     *batchShare,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
	}
	if *classesCSV != "" {
		classes, err := jobqueue.ParseClassSet(*classesCSV)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lopramd: -classes: %v\n", err)
			os.Exit(2)
		}
		cfg.Classes = classes
	}
	if *autoscaleS != "" {
		auto, err := parseAutoscale(*autoscaleS)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lopramd: -autoscale: %v\n", err)
			os.Exit(2)
		}
		cfg.Autoscale = auto
	}
	// Validate the policy names here so a typo is a clean exit-2 usage
	// error listing the valid names, not a New panic later.
	if _, err := jobqueue.ParseDequeuePolicy(*deqPolicy); err != nil {
		fmt.Fprintf(os.Stderr, "lopramd: -dequeue-policy: %v\n", err)
		os.Exit(2)
	}
	if _, err := jobqueue.ParseAdmissionPolicy(*admPolicy); err != nil {
		fmt.Fprintf(os.Stderr, "lopramd: -admission-policy: %v\n", err)
		os.Exit(2)
	}
	cfg.Policies = jobqueue.Policies{Dequeue: *deqPolicy, Admission: *admPolicy}
	// Profiling rates apply with or without the listener (a later SIGQUIT
	// dump or an attached debugger still sees the samples).
	if *mutexFrac > 0 {
		runtime.SetMutexProfileFraction(*mutexFrac)
	}
	if *blockRate > 0 {
		runtime.SetBlockProfileRate(*blockRate)
	}
	if *pprofAddr != "" {
		go func() {
			log.Printf("lopramd: pprof debug listener on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, newDebugMux()); err != nil {
				log.Printf("lopramd: pprof listener: %v", err)
			}
		}()
	}
	// closeTrace flushes and closes the -trace-out file; called after
	// the queue is closed (the mode helpers close it on return), which
	// is when the recorder has drained every record into the writer.
	closeTrace := func() {}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lopramd: -trace-out: %v\n", err)
			os.Exit(2)
		}
		tw := jobtrace.NewWriter(f)
		cfg.TraceSink = tw
		closeTrace = func() {
			err := tw.Flush()
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "lopramd: writing trace %s: %v\n", *traceOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "lopramd: trace: %d records -> %s\n", tw.Count(), *traceOut)
		}
	}

	switch {
	case *listScen:
		for _, sp := range scenario.Builtins() {
			fmt.Printf("%-26s %4d jobs, %-6s arrival  %s\n", sp.Name, sp.Jobs, arrivalOf(sp), sp.Description)
		}
		return
	case *scenarioID != "":
		if err := runScenario(cfg, setFlags, *scenarioID); err != nil {
			fmt.Fprintf(os.Stderr, "lopramd: %v\n", err)
			os.Exit(1)
		}
		closeTrace()
		return
	case *batch > 0:
		if err := runBatch(cfg, *batch, *seed, *dup, *algos); err != nil {
			fmt.Fprintf(os.Stderr, "lopramd: %v\n", err)
			os.Exit(1)
		}
		closeTrace()
		return
	}
	err := serve(cfg, *addr)
	closeTrace()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lopramd: %v\n", err)
		os.Exit(1)
	}
}

func arrivalOf(sp scenario.Spec) string {
	if sp.Arrival == "" {
		return scenario.ArrivalClosed
	}
	return sp.Arrival
}

// parseAutoscale parses the -autoscale flag: "min:max" with optional
// ":interval" (a Go duration) and ":high:low" contention thresholds, all
// defaulting as documented on jobqueue.AutoscaleConfig.
func parseAutoscale(s string) (*jobqueue.AutoscaleConfig, error) {
	fields := strings.Split(s, ":")
	if len(fields) < 2 || len(fields) > 5 || len(fields) == 4 {
		return nil, fmt.Errorf("%q: want min:max[:interval[:high:low]]", s)
	}
	var cfg jobqueue.AutoscaleConfig
	var err error
	if cfg.Min, err = strconv.Atoi(strings.TrimSpace(fields[0])); err != nil {
		return nil, fmt.Errorf("min %q is not an integer", fields[0])
	}
	if cfg.Max, err = strconv.Atoi(strings.TrimSpace(fields[1])); err != nil {
		return nil, fmt.Errorf("max %q is not an integer", fields[1])
	}
	if len(fields) >= 3 {
		if cfg.Interval, err = time.ParseDuration(strings.TrimSpace(fields[2])); err != nil {
			return nil, fmt.Errorf("interval %q is not a duration", fields[2])
		}
	}
	if len(fields) == 5 {
		if cfg.ImbalanceHigh, err = strconv.ParseFloat(strings.TrimSpace(fields[3]), 64); err != nil {
			return nil, fmt.Errorf("high threshold %q is not a number", fields[3])
		}
		if cfg.ImbalanceLow, err = strconv.ParseFloat(strings.TrimSpace(fields[4]), 64); err != nil {
			return nil, fmt.Errorf("low threshold %q is not a number", fields[4])
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// ---- scenario mode ----

// loadScenario resolves the -scenario argument: a built-in name first,
// else a path to a JSON spec file.
func loadScenario(nameOrPath string) (scenario.Spec, error) {
	if sp, ok := scenario.Builtin(nameOrPath); ok {
		return sp, nil
	}
	data, err := os.ReadFile(nameOrPath)
	if err != nil {
		var names []string
		for _, sp := range scenario.Builtins() {
			names = append(names, sp.Name)
		}
		return scenario.Spec{}, fmt.Errorf("%q is neither a built-in scenario (%s) nor a readable spec file: %v",
			nameOrPath, strings.Join(names, ", "), err)
	}
	var sp scenario.Spec
	if err := json.Unmarshal(data, &sp); err != nil {
		return scenario.Spec{}, fmt.Errorf("parsing scenario file %s: %w", nameOrPath, err)
	}
	if err := sp.Validate(); err != nil {
		return scenario.Spec{}, err
	}
	return sp, nil
}

// runScenario replays one scenario on a fresh queue and prints the
// serving report. Queue shape precedence: explicit command-line flags,
// then the scenario's own shard/worker targets, then defaults.
func runScenario(flagCfg jobqueue.Config, setFlags map[string]bool, nameOrPath string) error {
	sp, err := loadScenario(nameOrPath)
	if err != nil {
		return err
	}
	cfg := scenario.QueueConfig(sp)
	// The flight recorder rides along whatever queue shape wins: the
	// -trace-out sink is not a shape flag, it always applies.
	cfg.TraceSink = flagCfg.TraceSink
	cfg.TraceBuffer = flagCfg.TraceBuffer
	if setFlags["workers"] {
		cfg.Workers = flagCfg.Workers
	}
	if setFlags["shards"] {
		cfg.Shards = flagCfg.Shards
	}
	if setFlags["queue-depth"] {
		cfg.QueueDepth = flagCfg.QueueDepth
	}
	if setFlags["batch-share"] {
		cfg.BatchShare = flagCfg.BatchShare
	}
	if setFlags["classes"] {
		// Explicit flags win over the scenario's own class set; a mix
		// pinned to classes the override lacks fails loudly at submit.
		cfg.Classes = flagCfg.Classes
	}
	if setFlags["cache"] {
		cfg.CacheSize = flagCfg.CacheSize
	}
	if setFlags["timeout"] {
		cfg.DefaultTimeout = flagCfg.DefaultTimeout
	}
	if setFlags["dequeue-policy"] {
		cfg.Policies.Dequeue = flagCfg.Policies.Dequeue
	}
	if setFlags["admission-policy"] {
		cfg.Policies.Admission = flagCfg.Policies.Admission
	}
	q := jobqueue.New(cfg)
	defer q.Close()
	rep, err := scenario.Run(context.Background(), q, sp)
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)
	m := q.Snapshot()
	fmt.Printf("  queue: %d workers × %d shards · palrt scheduler: spawned %d (stolen %d) · inlined %d\n",
		m.Workers, m.Shards, m.Scheduler.Spawned, m.Scheduler.Stolen, m.Scheduler.Inlined)
	return nil
}

// ---- serve mode ----

func serve(cfg jobqueue.Config, addr string) error {
	q := jobqueue.New(cfg)
	defer q.Close()
	mux := newMux(q)

	srv := &http.Server{Addr: addr, Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("lopramd: serving on %s (%d workers)", addr, q.Snapshot().Workers)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-stop:
		log.Printf("lopramd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}

// newMux builds the daemon's HTTP surface over one queue: the handler
// set lives in internal/lopramhttp so it is testable (and fuzzable)
// without the daemon's flag plumbing or a bound listener.
func newMux(q *jobqueue.Queue) *http.ServeMux { return lopramhttp.NewMux(q) }

// newDebugMux builds the -pprof listener's handler: the standard
// net/http/pprof surface mounted explicitly on a fresh mux, so the
// profiling endpoints never leak onto the public API listener (importing
// net/http/pprof for side effects would register them on
// http.DefaultServeMux, which nothing here serves).
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ---- batch mode ----

// runBatch synthesizes a deterministic mixed workload (weighted algorithm
// choice, log-uniform sizes, a duplicate fraction re-submitting earlier
// specs) and replays it through the queue, then prints the serving report.
func runBatch(cfg jobqueue.Config, count int, seed uint64, dupFrac float64, algoCSV string) error {
	names := core.Algorithms()
	if algoCSV != "" {
		names = nil
		for _, s := range strings.Split(algoCSV, ",") {
			s = strings.TrimSpace(s)
			if core.MaxN(s, core.EnginePalrt) == 0 && core.MaxN(s, core.EngineSim) == 0 && core.MaxN(s, core.EnginePRAM) == 0 {
				return fmt.Errorf("unknown algorithm %q (catalogue: %s)", s, strings.Join(core.Algorithms(), ", "))
			}
			names = append(names, s)
		}
	}

	// Every (algorithm, engine) pair in the subset, uniformly weighted.
	type pair struct {
		algo   string
		engine core.Engine
	}
	var pairs []pair
	for _, name := range names {
		for _, e := range core.EnginesFor(name) {
			pairs = append(pairs, pair{name, e})
		}
	}
	if len(pairs) == 0 {
		return fmt.Errorf("no runnable (algorithm, engine) pairs")
	}
	weights := make([]int, len(pairs))
	for i := range weights {
		weights[i] = 1
	}

	r := workload.NewRNG(seed)
	var specs []jobqueue.Spec
	for len(specs) < count {
		if len(specs) > 0 && r.Float64() < dupFrac {
			// Re-request an earlier spec verbatim: the duplicate traffic
			// the result cache and coalescer exist for.
			specs = append(specs, specs[r.Intn(len(specs))])
			continue
		}
		p := pairs[workload.Choice(r, weights)]
		maxN := core.MaxN(p.algo, p.engine)
		hi := maxN
		if hi > 1<<16 {
			hi = 1 << 16
		}
		lo := 16
		if lo > hi {
			lo = hi
		}
		specs = append(specs, jobqueue.Spec{
			Algorithm: p.algo,
			N:         workload.LogUniform(r, lo, hi),
			Engine:    p.engine,
			Seed:      r.Uint64() % 8, // small seed space → organic duplicates too
		})
	}

	q := jobqueue.New(cfg)
	defer q.Close()

	// Closed-loop load generation: keep a bounded window of jobs in
	// flight, like a client population of fixed size. (An open-loop
	// flood would make every duplicate coalesce onto an in-flight job;
	// the window lets later duplicates hit the result cache instead.)
	window := 4 * cfg.Workers
	if window < 8 {
		window = 8
	}
	start := time.Now()
	jobs := make([]*jobqueue.Job, 0, count)
	failures := 0
	waitOldest := func(idx int) {
		if _, err := jobs[idx].Wait(context.Background()); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", jobs[idx].Name, err)
		}
	}
	for _, spec := range specs {
		job, err := q.Submit(spec)
		if err != nil {
			if errors.Is(err, jobqueue.ErrQueueFull) {
				return fmt.Errorf("queue saturated at %d jobs; raise -queue-depth", len(jobs))
			}
			return fmt.Errorf("submitting %s: %w", spec, err)
		}
		jobs = append(jobs, job)
		if waited := len(jobs) - window; waited >= 0 {
			waitOldest(waited)
		}
	}
	// The submit loop waited indices 0..len(jobs)-window; drain the rest.
	drainFrom := len(jobs) - window + 1
	if drainFrom < 0 {
		drainFrom = 0
	}
	for i := drainFrom; i < len(jobs); i++ {
		waitOldest(i)
	}
	elapsed := time.Since(start)

	m := q.Snapshot()
	fmt.Printf("lopramd batch: %d jobs in %v (%.1f jobs/sec, %d workers)\n",
		len(jobs), elapsed.Round(time.Millisecond), float64(len(jobs))/elapsed.Seconds(), m.Workers)
	fmt.Printf("  executed %d · cache hits %d · coalesced %d · hit rate %.0f%% · failures %d · timeouts %d\n",
		m.Completed+m.Failed, m.CacheHits, m.Coalesced, 100*m.HitRate, m.Failed, m.Timeouts)
	fmt.Printf("  exec latency ms: p50 %.2f · p95 %.2f · p99 %.2f · max %.2f\n",
		m.Wall.P50, m.Wall.P95, m.Wall.P99, m.Wall.Max)
	fmt.Printf("  queue wait ms:   p50 %.2f · p95 %.2f · p99 %.2f · max %.2f\n",
		m.Wait.P50, m.Wait.P95, m.Wait.P99, m.Wait.Max)
	fmt.Printf("  palrt scheduler: spawned %d (stolen %d) · inlined %d · workers started %d\n",
		m.Scheduler.Spawned, m.Scheduler.Stolen, m.Scheduler.Inlined, m.Scheduler.WorkersStarted)

	var algNames []string
	for name := range m.PerAlgorithm {
		algNames = append(algNames, name)
	}
	sort.Strings(algNames)
	fmt.Println("  per algorithm (executed runs):")
	for _, name := range algNames {
		s := m.PerAlgorithm[name]
		fmt.Printf("    %-14s count %-4d mean %.2fms  failed %d\n", name, s.Count, s.MeanWallMS, s.Failed)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d jobs failed", failures, len(jobs))
	}
	return nil
}
