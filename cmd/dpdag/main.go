// Command dpdag inspects the dependency DAG of a dynamic-programming
// problem: cells, edges, antichain decomposition, parallelism profile, and
// the predicted speedup for a range of processor counts (§4.3–§4.6 of the
// paper).
//
// Usage:
//
//	dpdag -problem editdist -n 32
//	dpdag -problem matrixchain -n 16 -layers
//	dpdag -problem {editdist|lcs|matrixchain|optbst|knapsack|fib|prefixsum|floydwarshall|cyk}
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lopram/internal/dp"
	"lopram/internal/trace"
	"lopram/internal/workload"
)

func main() {
	problem := flag.String("problem", "editdist", "DP problem to inspect")
	n := flag.Int("n", 24, "instance size")
	seed := flag.Uint64("seed", 42, "workload seed")
	layers := flag.Bool("layers", false, "print every antichain layer")
	flag.Parse()

	r := workload.NewRNG(*seed)
	spec, desc := buildSpec(*problem, *n, r)
	if spec == nil {
		fmt.Fprintf(os.Stderr, "dpdag: unknown problem %q\n", *problem)
		os.Exit(2)
	}

	g := dp.BuildGraph(spec)
	pr, err := g.ParallelismProfile()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dpdag: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("problem: %s\n", desc)
	fmt.Printf("cells: %d, dependency edges: %d, sources (base cases): %d\n",
		g.N(), g.Edges(), len(g.Sources()))
	fmt.Printf("longest chain (critical path / Mirsky layers): %d\n", pr.CriticalPath)
	fmt.Printf("widest antichain: %d\n\n", pr.MaxWidth)

	tb := trace.NewTable("p", "ideal rounds Σ⌈w_i/p⌉", "ideal speedup", "efficiency")
	for _, p := range []int{1, 2, 4, 8, 16} {
		s := pr.IdealSpeedup(p)
		tb.AddRow(p, pr.IdealTime(p), fmt.Sprintf("%.2f", s), fmt.Sprintf("%.2f", s/float64(p)))
	}
	fmt.Println(tb.String())

	if *layers {
		ac, _ := g.Antichains()
		fmt.Println("antichain layers (level: width):")
		for i, layer := range ac {
			bar := strings.Repeat("#", min(len(layer), 80))
			fmt.Printf("%4d: %5d %s\n", i, len(layer), bar)
		}
	}
}

func buildSpec(name string, n int, r *workload.RNG) (dp.Spec, string) {
	switch strings.ToLower(name) {
	case "editdist":
		a, b := workload.RelatedStrings(r, n, 4, n/8+1)
		return dp.NewEditDistance(a, b), fmt.Sprintf("edit distance, |a|=%d |b|=%d", len(a), len(b))
	case "lcs":
		a, b := workload.RelatedStrings(r, n, 3, n/8+1)
		return dp.NewLCS(a, b), fmt.Sprintf("LCS, |a|=%d |b|=%d", len(a), len(b))
	case "matrixchain":
		dims := workload.ChainDims(r, n, 4, 50)
		return dp.NewMatrixChain(dims), fmt.Sprintf("matrix chain, %d matrices", n)
	case "optbst":
		w := workload.BSTFrequencies(r, n, 30)
		return dp.NewOptimalBST(w), fmt.Sprintf("optimal BST, %d keys", n)
	case "knapsack":
		ws, vs := workload.Weights(r, n, 10, 50)
		return dp.NewKnapsack(ws, vs, 4*n), fmt.Sprintf("0/1 knapsack, %d items, capacity %d", n, 4*n)
	case "fib":
		return dp.NewFib(n), fmt.Sprintf("Fibonacci F(0..%d)", n)
	case "prefixsum":
		return dp.NewPrefixSum(workload.Int64s(r, n)), fmt.Sprintf("prefix sums over %d values", n)
	case "floydwarshall":
		adj := make([]int64, n*n)
		for i := range adj {
			adj[i] = dp.Inf
			if r.Float64() < 0.3 {
				adj[i] = int64(1 + r.Intn(9))
			}
		}
		return dp.NewFloydWarshall(n, adj), fmt.Sprintf("Floyd–Warshall, %d vertices", n)
	case "cyk":
		var b strings.Builder
		for b.Len() < n-1 {
			b.WriteString("()")
		}
		s := b.String()
		return dp.NewCYK(dp.BalancedParens(), s), fmt.Sprintf("CYK (Dyck grammar), |input|=%d", len(s))
	}
	return nil, ""
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
