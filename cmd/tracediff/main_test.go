package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lopram/internal/jobqueue"
	"lopram/internal/jobtrace"
	"lopram/internal/scenario"
)

// traceTo replays a builtin scenario with the flight recorder writing
// JSONL to path — the same pipeline lopramd -trace-out drives.
func traceTo(t *testing.T, name, path string) {
	t.Helper()
	sp, ok := scenario.Builtin(name)
	if !ok {
		t.Fatalf("builtin %s missing", name)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tw := jobtrace.NewWriter(f)
	cfg := scenario.QueueConfig(sp)
	cfg.TraceSink = tw
	q := jobqueue.New(cfg)
	if _, err := scenario.Run(context.Background(), q, sp); err != nil {
		t.Fatalf("replay: %v", err)
	}
	q.Close()
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSameBuildSameSeedPasses is the acceptance check: two traces of
// one scenario from one build at one seed must join completely and
// show zero structural deltas, so the default gate passes. The wait
// floor is raised the way the CI invocation raises it — latency jitter
// on a small scenario is machine noise, not a regression.
func TestSameBuildSameSeedPasses(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.jsonl")
	head := filepath.Join(dir, "head.jsonl")
	traceTo(t, "cache-friendly-repeat", base)
	traceTo(t, "cache-friendly-repeat", head)

	var out, errOut bytes.Buffer
	code := run([]string{"-wait-floor-ms", "1000", "-run-floor-ms", "1000", base, head}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	text := out.String()
	for _, want := range []string{"joined 300 pairs", "unmatched A 0, B 0", "PASS"} {
		if !strings.Contains(text, want) {
			t.Errorf("report lacks %q:\n%s", want, text)
		}
	}
}

// TestUnmatchedSubmissionFails: a head trace with an extra submission
// of some key is a changed workload, which fails regardless of
// thresholds.
func TestUnmatchedSubmissionFails(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.jsonl")
	head := filepath.Join(dir, "head.jsonl")
	traceTo(t, "cache-friendly-repeat", base)
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	data = append(data, lines[0]...)
	data = append(data, '\n')
	if err := os.WriteFile(head, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	code := run([]string{"-wait-floor-ms", "1000", "-run-floor-ms", "1000", base, head}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("report lacks FAIL line:\n%s", out.String())
	}
}

// TestFairnessGateOnWeightedScenario replays the weighted-class
// builtin twice and runs the full CLI with the fairness gate plus the
// configured DWRR weights: one build at one seed must keep each
// class's executed-wait share put, and the weight column must render.
func TestFairnessGateOnWeightedScenario(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.jsonl")
	head := filepath.Join(dir, "head.jsonl")
	traceTo(t, "priority-inversion-probe", base)
	traceTo(t, "priority-inversion-probe", head)

	var out, errOut bytes.Buffer
	code := run([]string{
		"-wait-floor-ms", "1000", "-run-floor-ms", "1000",
		"-max-fairness-delta", "15", "-weights", "interactive:4,batch:1",
		base, head,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"PASS", "wait-share% A/B", "weight%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report lacks %q:\n%s", want, out.String())
		}
	}
}

func TestParseWeights(t *testing.T) {
	w, err := parseWeights("interactive:4, batch:1")
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 || w["interactive"] != 4 || w["batch"] != 1 {
		t.Fatalf("parsed %v, want interactive:4 batch:1", w)
	}
	for _, bad := range []string{"interactive", ":4", "interactive:0", "interactive:-1", "interactive:x", "a:1,,b:2"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) accepted, want error", bad)
		}
	}
}

// TestBadUsage: flag errors and missing files exit 2, distinct from a
// threshold failure.
func TestBadUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"only-one.jsonl"}, &out, &errOut); code != 2 {
		t.Fatalf("one positional arg: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent/a.jsonl", "/nonexistent/b.jsonl"}, &out, &errOut); code != 2 {
		t.Fatalf("missing files: exit %d, want 2", code)
	}
}
