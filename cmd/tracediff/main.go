// Command tracediff joins two JSONL completion traces (the flight
// recorder's output — lopramd -trace-out, or /v1/scenarios/{name}/run
// with ?trace=1) job-by-job and reports per-class and per-shard deltas
// in wait, run, hit rate, steal rate and placement. It exits non-zero
// when a configured threshold is violated — benchgate lifted from
// benchmarks to scenario replays, wired into CI as the replay A/B gate
// against the merge base:
//
//	go run ./cmd/lopramd -scenario cache-friendly-repeat -trace-out head.jsonl
//	(cd $(git merge-base ...) && go run ./cmd/lopramd -scenario cache-friendly-repeat -trace-out base.jsonl)
//	tracediff -max-hit-delta 2 -max-wait-p99 0.25 base.jsonl head.jsonl
//
// Records join by deterministic job key (spec string) plus submission
// sequence: the k-th submission of a key in the base trace pairs with
// the k-th in the head trace, so traces of one scenario stream always
// join completely, whatever order completions landed in. A submission
// multiset mismatch (a key appearing more often in one trace) always
// fails; rate and latency deltas fail only past their thresholds, and a
// latency gate also requires the regression to exceed an absolute
// millisecond floor so microsecond-scale noise cannot flake CI.
//
// -max-fairness-delta gates scheduling fairness: each class's share of
// the total executed queue wait is computed per trace, and any class
// whose share moves more than the given percentage points between base
// and head fails the diff — the DWRR weight configuration's
// steady-state fingerprint, guarded without fixing absolute wait
// numbers. -weights "interactive:4,batch:1" adds the configured
// weight-share column to the per-class table for eyeballing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lopram/internal/jobtrace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and exit code, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracediff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var th jobtrace.Thresholds
	fs.Float64Var(&th.HitRatePoints, "max-hit-delta", 2,
		"fail when |hit-rate delta| exceeds this many percentage points (0 disables)")
	fs.Float64Var(&th.WaitP99Frac, "max-wait-p99", 0.25,
		"fail when p99 queue wait regresses by more than this fraction (0 disables)")
	fs.Float64Var(&th.WaitFloorMS, "wait-floor-ms", 5,
		"absolute noise floor for the wait gate: regressions smaller than this many ms never fail")
	fs.Float64Var(&th.RunP99Frac, "max-run-p99", 0,
		"fail when p99 execution latency regresses by more than this fraction (0 disables)")
	fs.Float64Var(&th.RunFloorMS, "run-floor-ms", 5,
		"absolute noise floor for the run gate, in ms")
	fs.Float64Var(&th.StealRatePoints, "max-steal-delta", 0,
		"fail when |steal-rate delta| exceeds this many percentage points (0 disables)")
	fs.Float64Var(&th.PlacementFrac, "max-placement-moved", 0,
		"fail when more than this fraction of matched jobs changed submit shard (0 disables)")
	fs.Float64Var(&th.FairnessDeltaPoints, "max-fairness-delta", 0,
		"fail when any class's executed-wait share moves more than this many percentage points between the traces (0 disables)")
	weights := fs.String("weights", "",
		`configured DWRR class weights as "name:w,name:w" — adds the weight-share column to the per-class report (informational)`)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tracediff [flags] base.jsonl head.jsonl\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *weights != "" {
		var err error
		if th.Weights, err = parseWeights(*weights); err != nil {
			fmt.Fprintf(stderr, "tracediff: %v\n", err)
			return 2
		}
	}
	base, err := jobtrace.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "tracediff: %v\n", err)
		return 2
	}
	head, err := jobtrace.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "tracediff: %v\n", err)
		return 2
	}
	d := jobtrace.Diff(base, head, th)
	d.WriteText(stdout)
	if d.Failed() {
		return 1
	}
	return 0
}

// parseWeights parses the -weights value: comma-separated name:weight
// pairs, weights positive.
func parseWeights(s string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok || name == "" {
			return nil, fmt.Errorf(`-weights: %q is not a name:weight pair (want e.g. "interactive:4,batch:1")`, pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("-weights: class %s needs a positive weight, got %q", name, val)
		}
		out[name] = w
	}
	return out, nil
}
