package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckTree(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "API.md"), "see [spec](../SPEC.md) and [anchor](#local) and [web](https://example.com)")
	write(t, filepath.Join(dir, "SPEC.md"), "see [api](docs/API.md#jobs) and [dir](docs) and [gone](missing.md)")
	write(t, filepath.Join(dir, "notes.txt"), "[not markdown](nowhere.md)")

	broken, err := checkTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 {
		t.Fatalf("broken = %v, want exactly the missing.md link", broken)
	}
	if !strings.Contains(broken[0], "SPEC.md:1") || !strings.Contains(broken[0], "missing.md") {
		t.Fatalf("diagnostic %q missing file/line/target", broken[0])
	}
}

func TestCheckTreeFragmentsAndSchemes(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "README.md"),
		"[a](#only-anchor) [b](mailto:x@y.z) [c](/etc/passwd) [d](sub/ok.md#sec)")
	write(t, filepath.Join(dir, "sub", "ok.md"), "fine")
	broken, err := checkTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 0 {
		t.Fatalf("broken = %v, want none", broken)
	}
}

func TestRepoDocsResolve(t *testing.T) {
	// The tool gates this repository's own docs in CI; keep the tree
	// clean from inside the test suite too.
	broken, err := checkTree("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) > 0 {
		t.Errorf("repository has broken relative Markdown links:\n%s", strings.Join(broken, "\n"))
	}
}
