// Command doccheck is the documentation linter the CI docs job runs: it
// walks every Markdown file in the repository and fails when a relative
// link points at a file or directory that does not exist. External links
// (http, https, mailto) and pure in-page anchors are skipped; a relative
// link's own #fragment is stripped before the target is checked.
//
//	go run ./cmd/doccheck            # check the repo rooted at .
//	go run ./cmd/doccheck -root dir  # check another tree
//
// Exit status 1 means at least one broken link, with one "file:line:
// target" diagnostic per offence on stderr.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkPattern matches inline Markdown links [text](target). Reference
// links and autolinks are rare in this repository; inline links are the
// ones that rot.
var linkPattern = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// skipDirs are trees that hold no documentation of ours.
var skipDirs = map[string]bool{".git": true, "node_modules": true}

func main() {
	root := flag.String("root", ".", "directory tree to check")
	flag.Parse()
	broken, err := checkTree(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(2)
	}
	for _, b := range broken {
		fmt.Fprintln(os.Stderr, b)
	}
	if len(broken) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken relative link(s)\n", len(broken))
		os.Exit(1)
	}
	fmt.Println("doccheck: all relative links resolve")
}

// checkTree returns one "file:line: broken link: target" diagnostic per
// unresolvable relative link under root.
func checkTree(root string) ([]string, error) {
	var broken []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if skipDirs[d.Name()] {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(strings.ToLower(d.Name()), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if !relativeLink(target) {
					continue
				}
				target = strings.SplitN(target, "#", 2)[0]
				if target == "" {
					continue // pure in-page anchor
				}
				resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					broken = append(broken, fmt.Sprintf("%s:%d: broken link: %s", path, i+1, m[1]))
				}
			}
		}
		return nil
	})
	return broken, err
}

// relativeLink reports whether target is a relative filesystem link (the
// kind this tool can and should verify).
func relativeLink(target string) bool {
	for _, scheme := range []string{"http://", "https://", "mailto:", "ftp://"} {
		if strings.HasPrefix(target, scheme) {
			return false
		}
	}
	// Absolute paths point outside the repository's control.
	return !strings.HasPrefix(target, "/")
}
