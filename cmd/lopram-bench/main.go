// Command lopram-bench runs the LoPRAM reproduction suite and prints each
// experiment's regenerated table with a PASS/FAIL verdict against the
// paper's claim. The output of a full run is the body of EXPERIMENTS.md.
//
// Usage:
//
//	lopram-bench            # full suite, E1…E14 + ablations A1…A4
//	lopram-bench -exp E5    # a single experiment
//	lopram-bench -quick     # trimmed parameter sweeps
//	lopram-bench -list      # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lopram/internal/experiments"
	"lopram/internal/jobqueue"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by id (e.g. E5, A2)")
	quick := flag.Bool("quick", false, "trim parameter sweeps for a fast pass")
	list := flag.Bool("list", false, "list experiment ids")
	jobs := flag.Int("jobs", 0, "run the suite through the jobqueue dispatcher with this many workers (0 = sequential)")
	flag.Parse()

	if *list {
		for _, r := range experiments.All(true) {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	var reports []experiments.Report
	if *exp != "" {
		r, ok := experiments.ByID(*exp, *quick)
		if !ok {
			fmt.Fprintf(os.Stderr, "lopram-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		reports = []experiments.Report{r}
	} else if *jobs > 0 {
		// Dispatch the suite across a worker pool: the reproduction
		// suite doubling as a load test of internal/jobqueue.
		q := jobqueue.New(jobqueue.Config{Workers: *jobs, DefaultTimeout: 30 * time.Minute})
		var err error
		reports, err = experiments.QueueSuite(q, *quick)
		q.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lopram-bench: %v\n", err)
			os.Exit(1)
		}
		m := q.Snapshot()
		fmt.Printf("dispatched %d experiments over %d workers: exec p50 %.0fms p95 %.0fms\n\n",
			m.Completed, m.Workers, m.Wall.P50, m.Wall.P95)
	} else {
		reports = experiments.All(*quick)
	}

	failed := 0
	for _, r := range reports {
		fmt.Println(r.String())
		if !r.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lopram-bench: %d of %d experiments FAILED\n", failed, len(reports))
		os.Exit(1)
	}
	fmt.Printf("all %d experiments PASS\n", len(reports))
}
