// Command lopram-bench runs the LoPRAM reproduction suite and prints each
// experiment's regenerated table with a PASS/FAIL verdict against the
// paper's claim. The output of a full run is the body of EXPERIMENTS.md.
//
// Usage:
//
//	lopram-bench            # full suite, E1…E14 + ablations A1…A4
//	lopram-bench -exp E5    # a single experiment
//	lopram-bench -quick     # trimmed parameter sweeps
//	lopram-bench -list      # list experiment ids and titles
//
// -scenario switches to scenario-replay mode: replay one load scenario
// (a built-in name or a JSON spec file) against a fresh queue and print
// the serving report — the driver behind ingest-path A/B runs.
// -ingest single|batch overrides the spec's submit path and -batch-size
// its batch group size, so one spec compares both paths:
//
//	lopram-bench -scenario cache-friendly-repeat -ingest single
//	lopram-bench -scenario cache-friendly-repeat -ingest batch -batch-size 128
//
// -wire json|binary replays the scenario's exact job stream over HTTP
// instead of in-process — one POST /v1/jobs:stream connection in the
// chosen wire flavor, against an in-process server (or a running
// lopramd named by -addr) — so the two codecs A/B on identical work:
//
//	lopram-bench -scenario cache-friendly-repeat -wire json
//	lopram-bench -scenario cache-friendly-repeat -wire binary
//	lopram-bench -scenario uniform-small -wire binary -addr http://127.0.0.1:8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"lopram/internal/experiments"
	"lopram/internal/jobqueue"
	"lopram/internal/lopramhttp"
	"lopram/internal/scenario"
	"lopram/internal/wire"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by id (e.g. E5, A2)")
	quick := flag.Bool("quick", false, "trim parameter sweeps for a fast pass")
	list := flag.Bool("list", false, "list experiment ids")
	jobs := flag.Int("jobs", 0, "run the suite through the jobqueue dispatcher with this many workers (0 = sequential)")
	scenarioID := flag.String("scenario", "", "scenario-replay mode: replay a built-in scenario by name, or a JSON spec file by path, and exit")
	ingest := flag.String("ingest", "", `scenario-replay ingest override: "single" or "batch" (empty keeps the spec's own path)`)
	batchSize := flag.Int("batch-size", 0, "scenario-replay batch-ingest group size (implies -ingest batch; 0 keeps the spec's own)")
	wireProto := flag.String("wire", "", `scenario-replay over HTTP: stream the jobs through POST /v1/jobs:stream in the "json" or "binary" wire flavor`)
	addr := flag.String("addr", "", "server root for -wire (e.g. http://127.0.0.1:8080; empty spins an in-process server)")
	flag.Parse()

	if *scenarioID != "" {
		var err error
		switch {
		case *wireProto != "" && (*ingest != "" || *batchSize != 0):
			err = fmt.Errorf("-wire replaces the in-process ingest; drop -ingest/-batch-size")
		case *wireProto != "":
			err = replayScenarioWire(*scenarioID, *wireProto, *addr)
		default:
			err = replayScenario(*scenarioID, *ingest, *batchSize)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lopram-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *ingest != "" || *batchSize != 0 || *wireProto != "" || *addr != "" {
		fmt.Fprintln(os.Stderr, "lopram-bench: -ingest/-batch-size/-wire/-addr need -scenario")
		os.Exit(2)
	}

	if *list {
		for _, r := range experiments.All(true) {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	var reports []experiments.Report
	if *exp != "" {
		r, ok := experiments.ByID(*exp, *quick)
		if !ok {
			fmt.Fprintf(os.Stderr, "lopram-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		reports = []experiments.Report{r}
	} else if *jobs > 0 {
		// Dispatch the suite across a worker pool: the reproduction
		// suite doubling as a load test of internal/jobqueue.
		q := jobqueue.New(jobqueue.Config{Workers: *jobs, DefaultTimeout: 30 * time.Minute})
		var err error
		reports, err = experiments.QueueSuite(q, *quick)
		q.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lopram-bench: %v\n", err)
			os.Exit(1)
		}
		m := q.Snapshot()
		fmt.Printf("dispatched %d experiments over %d workers: exec p50 %.0fms p95 %.0fms\n\n",
			m.Completed, m.Workers, m.Wall.P50, m.Wall.P95)
	} else {
		reports = experiments.All(*quick)
	}

	failed := 0
	for _, r := range reports {
		fmt.Println(r.String())
		if !r.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lopram-bench: %d of %d experiments FAILED\n", failed, len(reports))
		os.Exit(1)
	}
	fmt.Printf("all %d experiments PASS\n", len(reports))
}

// resolveScenario turns the -scenario argument into a spec: built-in
// name first, then JSON spec file.
func resolveScenario(nameOrPath string) (scenario.Spec, error) {
	sp, ok := scenario.Builtin(nameOrPath)
	if !ok {
		data, err := os.ReadFile(nameOrPath)
		if err != nil {
			return sp, fmt.Errorf("%q is neither a built-in scenario nor a readable spec file: %v", nameOrPath, err)
		}
		if err := json.Unmarshal(data, &sp); err != nil {
			return sp, fmt.Errorf("parsing scenario file %s: %w", nameOrPath, err)
		}
	}
	return sp, nil
}

// replayScenario resolves the -scenario argument, applies the
// -ingest/-batch-size overrides, and replays it against a fresh queue
// shaped by scenario.QueueConfig.
func replayScenario(nameOrPath, ingest string, batchSize int) error {
	sp, err := resolveScenario(nameOrPath)
	if err != nil {
		return err
	}
	if batchSize != 0 && ingest == "" {
		ingest = scenario.IngestBatch
	}
	switch ingest {
	case "":
	case scenario.IngestSingle:
		sp.Ingest, sp.BatchSize = scenario.IngestSingle, 0
	case scenario.IngestBatch:
		sp.Ingest = scenario.IngestBatch
		if batchSize != 0 {
			sp.BatchSize = batchSize
		}
	default:
		return fmt.Errorf("unknown -ingest %q (want %q or %q)", ingest, scenario.IngestSingle, scenario.IngestBatch)
	}
	if err := sp.Validate(); err != nil {
		return err
	}
	q := jobqueue.New(scenario.QueueConfig(sp))
	defer q.Close()
	rep, err := scenario.Run(context.Background(), q, sp)
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)
	m := q.Snapshot()
	fmt.Printf("  queue: %d workers × %d shards · ingest %s\n", m.Workers, m.Shards, ingestOf(sp))
	return nil
}

// ingestOf names the replay's effective ingest path for the summary line.
func ingestOf(sp scenario.Spec) string {
	if sp.Ingest == scenario.IngestBatch {
		return fmt.Sprintf("%s×%d", scenario.IngestBatch, sp.BatchSize)
	}
	return scenario.IngestSingle
}

// replayScenarioWire streams the scenario's exact job sequence through
// POST /v1/jobs:stream in the chosen wire flavor — against a running
// server named by addr, or an in-process one spun from the scenario's
// own queue config — and prints a throughput summary. The job stream
// is materialized up front so the timed section measures the wire
// path, not the generator.
func replayScenarioWire(nameOrPath, proto, addr string) error {
	sp, err := resolveScenario(nameOrPath)
	if err != nil {
		return err
	}
	if err := sp.Validate(); err != nil {
		return err
	}
	specs, err := scenario.Stream(sp)
	if err != nil {
		return err
	}

	httpc := http.DefaultClient
	classes := sp.Classes
	if len(classes) == 0 {
		// Mirror the server's effective class set so class ids agree.
		classes = jobqueue.DefaultClasses(0)
	}
	base := addr
	if addr == "" {
		q := jobqueue.New(scenario.QueueConfig(sp))
		defer q.Close()
		srv := httptest.NewServer(lopramhttp.NewMux(q))
		defer srv.Close()
		httpc, base, classes = srv.Client(), srv.URL, q.Classes()
	}
	cl, err := wire.NewClient(httpc, base, proto, classes)
	if err != nil {
		return err
	}

	start := time.Now()
	results, err := cl.Stream(specs)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	var done, failed, cached int
	for i := range results {
		switch {
		case !results[i].Done:
			failed++
		case results[i].Res.Cached:
			done++
			cached++
		default:
			done++
		}
	}
	fmt.Printf("scenario %s over wire=%s (%s)\n", sp.Name, proto, serverOf(addr))
	fmt.Printf("  jobs %d · done %d · failed %d · cached %d\n", len(results), done, failed, cached)
	fmt.Printf("  wall %.3fs · %.0f jobs/sec\n", elapsed.Seconds(), float64(len(results))/elapsed.Seconds())
	return nil
}

// serverOf names the wire replay's target for the summary line.
func serverOf(addr string) string {
	if addr == "" {
		return "in-process server"
	}
	return addr
}
