// Command lopram-bench runs the LoPRAM reproduction suite and prints each
// experiment's regenerated table with a PASS/FAIL verdict against the
// paper's claim. The output of a full run is the body of EXPERIMENTS.md.
//
// Usage:
//
//	lopram-bench            # full suite, E1…E14 + ablations A1…A4
//	lopram-bench -exp E5    # a single experiment
//	lopram-bench -quick     # trimmed parameter sweeps
//	lopram-bench -list      # list experiment ids and titles
//
// -scenario switches to scenario-replay mode: replay one load scenario
// (a built-in name or a JSON spec file) against a fresh queue and print
// the serving report — the driver behind ingest-path A/B runs.
// -ingest single|batch overrides the spec's submit path and -batch-size
// its batch group size, so one spec compares both paths:
//
//	lopram-bench -scenario cache-friendly-repeat -ingest single
//	lopram-bench -scenario cache-friendly-repeat -ingest batch -batch-size 128
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"lopram/internal/experiments"
	"lopram/internal/jobqueue"
	"lopram/internal/scenario"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by id (e.g. E5, A2)")
	quick := flag.Bool("quick", false, "trim parameter sweeps for a fast pass")
	list := flag.Bool("list", false, "list experiment ids")
	jobs := flag.Int("jobs", 0, "run the suite through the jobqueue dispatcher with this many workers (0 = sequential)")
	scenarioID := flag.String("scenario", "", "scenario-replay mode: replay a built-in scenario by name, or a JSON spec file by path, and exit")
	ingest := flag.String("ingest", "", `scenario-replay ingest override: "single" or "batch" (empty keeps the spec's own path)`)
	batchSize := flag.Int("batch-size", 0, "scenario-replay batch-ingest group size (implies -ingest batch; 0 keeps the spec's own)")
	flag.Parse()

	if *scenarioID != "" {
		if err := replayScenario(*scenarioID, *ingest, *batchSize); err != nil {
			fmt.Fprintf(os.Stderr, "lopram-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *ingest != "" || *batchSize != 0 {
		fmt.Fprintln(os.Stderr, "lopram-bench: -ingest/-batch-size need -scenario")
		os.Exit(2)
	}

	if *list {
		for _, r := range experiments.All(true) {
			fmt.Printf("%-4s %s\n", r.ID, r.Title)
		}
		return
	}

	var reports []experiments.Report
	if *exp != "" {
		r, ok := experiments.ByID(*exp, *quick)
		if !ok {
			fmt.Fprintf(os.Stderr, "lopram-bench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		reports = []experiments.Report{r}
	} else if *jobs > 0 {
		// Dispatch the suite across a worker pool: the reproduction
		// suite doubling as a load test of internal/jobqueue.
		q := jobqueue.New(jobqueue.Config{Workers: *jobs, DefaultTimeout: 30 * time.Minute})
		var err error
		reports, err = experiments.QueueSuite(q, *quick)
		q.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lopram-bench: %v\n", err)
			os.Exit(1)
		}
		m := q.Snapshot()
		fmt.Printf("dispatched %d experiments over %d workers: exec p50 %.0fms p95 %.0fms\n\n",
			m.Completed, m.Workers, m.Wall.P50, m.Wall.P95)
	} else {
		reports = experiments.All(*quick)
	}

	failed := 0
	for _, r := range reports {
		fmt.Println(r.String())
		if !r.Pass {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "lopram-bench: %d of %d experiments FAILED\n", failed, len(reports))
		os.Exit(1)
	}
	fmt.Printf("all %d experiments PASS\n", len(reports))
}

// replayScenario resolves the -scenario argument (built-in name first,
// then JSON spec file), applies the -ingest/-batch-size overrides, and
// replays it against a fresh queue shaped by scenario.QueueConfig.
func replayScenario(nameOrPath, ingest string, batchSize int) error {
	sp, ok := scenario.Builtin(nameOrPath)
	if !ok {
		data, err := os.ReadFile(nameOrPath)
		if err != nil {
			return fmt.Errorf("%q is neither a built-in scenario nor a readable spec file: %v", nameOrPath, err)
		}
		if err := json.Unmarshal(data, &sp); err != nil {
			return fmt.Errorf("parsing scenario file %s: %w", nameOrPath, err)
		}
	}
	if batchSize != 0 && ingest == "" {
		ingest = scenario.IngestBatch
	}
	switch ingest {
	case "":
	case scenario.IngestSingle:
		sp.Ingest, sp.BatchSize = scenario.IngestSingle, 0
	case scenario.IngestBatch:
		sp.Ingest = scenario.IngestBatch
		if batchSize != 0 {
			sp.BatchSize = batchSize
		}
	default:
		return fmt.Errorf("unknown -ingest %q (want %q or %q)", ingest, scenario.IngestSingle, scenario.IngestBatch)
	}
	if err := sp.Validate(); err != nil {
		return err
	}
	q := jobqueue.New(scenario.QueueConfig(sp))
	defer q.Close()
	rep, err := scenario.Run(context.Background(), q, sp)
	if err != nil {
		return err
	}
	rep.WriteText(os.Stdout)
	m := q.Snapshot()
	fmt.Printf("  queue: %d workers × %d shards · ingest %s\n", m.Workers, m.Shards, ingestOf(sp))
	return nil
}

// ingestOf names the replay's effective ingest path for the summary line.
func ingestOf(sp scenario.Spec) string {
	if sp.Ingest == scenario.IngestBatch {
		return fmt.Sprintf("%s×%d", scenario.IngestBatch, sp.BatchSize)
	}
	return scenario.IngestSingle
}
