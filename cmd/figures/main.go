// Command figures regenerates the two figures of the paper as ASCII art:
//
//	figures -fig 1            # Figure 1: mergesort tree, n=16, p=4, t=6
//	figures -fig 1 -t 8       # the same tree at another instant
//	figures -fig 2            # Figure 2: the spawn frontier for p = a^k
//	figures -fig 1 -gantt     # additionally print the processor Gantt chart
package main

import (
	"flag"
	"fmt"
	"os"

	"lopram/internal/dandc"
	"lopram/internal/master"
	"lopram/internal/sim"
	"lopram/internal/trace"
)

func main() {
	fig := flag.Int("fig", 1, "figure number (1 or 2)")
	at := flag.Int64("t", 6, "time step of the Figure 1 snapshot")
	n := flag.Int("n", 16, "input size for Figure 1 (power of two)")
	p := flag.Int("p", 4, "processor count")
	gantt := flag.Bool("gantt", false, "also print the per-processor Gantt chart")
	flag.Parse()

	switch *fig {
	case 1:
		figure1(*n, *p, *at, *gantt)
	case 2:
		figure2(*p)
	default:
		fmt.Fprintln(os.Stderr, "figures: -fig must be 1 or 2")
		os.Exit(2)
	}
}

func msortFig(n int) sim.Func {
	return func(tc *sim.TC) {
		tc.Work(1)
		if n <= 1 {
			return
		}
		tc.Do(msortFig(n/2), msortFig(n-n/2))
	}
}

func figure1(n, p int, at int64, gantt bool) {
	height := 0
	for v := 1; v < n; v *= 2 {
		height++
	}
	m := sim.New(sim.Config{P: p, Trace: true})
	res := m.MustRun(msortFig(n))
	fmt.Printf("Figure 1 — mergesort execution tree, n=%d, p=%d (paper: n=16, p=4, t=6)\n\n", n, p)
	fmt.Print(trace.RenderTree(res.Trace, height, at))
	fmt.Println()
	fmt.Println("complete activation numbering:")
	fmt.Print(trace.RenderLabels(res.Trace, height))
	if gantt {
		fmt.Println()
		fmt.Println("processor schedule (digits are thread ids mod 10):")
		fmt.Print(trace.Gantt(res.Trace, res.Steps+1))
	}
}

func figure2(p int) {
	fmt.Printf("Figure 2 — execution tree of a divide-and-conquer algorithm with p=%d processors\n", p)
	fmt.Println("(threads spawn per level until a^k = p calls exist; deeper calls run sequentially)")
	fmt.Println()
	k := master.FrontierDepth(p, 2)
	for d := 0; d <= k; d++ {
		nodes := 1 << d
		fmt.Printf("level %d: %4d pal-thread(s)", d, nodes)
		if nodes >= p {
			fmt.Printf("   ← frontier: a^k = %d ≥ p; below this every thread runs T(n/b^%d) sequentially", nodes, k)
		}
		fmt.Println()
	}
	fmt.Println()

	// Demonstrate on the simulator: per-level activation spread.
	m := sim.New(sim.Config{P: p, Trace: true})
	cm := dandc.CostModel{Rec: dandc.Mergesort(), SpawnDepth: -1}
	res := m.MustRun(cm.Program(1 << 8))
	byDepth := map[int]map[int64]bool{}
	maxDepth := 0
	for _, nt := range res.Trace.Nodes() {
		d := len(nt.Path)
		if byDepth[d] == nil {
			byDepth[d] = map[int64]bool{}
		}
		byDepth[d][nt.ActivatedAt] = true
		if d > maxDepth {
			maxDepth = d
		}
	}
	fmt.Println("measured on the simulator (mergesort cost model, n=256):")
	for d := 0; d <= maxDepth && d <= k+2; d++ {
		kind := "lock-step (parallel frontier)"
		if len(byDepth[d]) > 1 {
			kind = "staggered (sequential below frontier)"
		}
		fmt.Printf("  depth %d: %3d distinct activation instants — %s\n", d, len(byDepth[d]), kind)
	}
}
