// Command benchgate is the benchmark-regression gate the CI bench job runs:
// it parses `go test -bench` output, compares selected benchmarks against a
// committed baseline (BENCH_BASELINE.json), and exits non-zero when
// throughput regressed beyond the tolerance — a benchstat-style comparison
// with a pass/fail verdict instead of a table.
//
// Gate a bench run (fails on >20% ops/sec regression by default; the
// default -match gates both dispatch matrices, BenchmarkJobQueueThroughput
// and BenchmarkJobQueueClasses, plus the CacheHit and Settle completion
// benchmarks — every BenchmarkJobQueue* family):
//
//	go test -run='^$' -bench=BenchmarkJobQueue -benchmem -count=3 . | \
//	    go run ./cmd/benchgate -baseline BENCH_BASELINE.json
//
// Refresh the baseline on the machine class that runs the gate:
//
//	go test -run='^$' -bench=BenchmarkJobQueue -benchmem -count=3 . | \
//	    go run ./cmd/benchgate -baseline BENCH_BASELINE.json -update
//
// Same-machine A/B (immune to machine-class skew — CI uses this for pull
// requests, benching the merge-base in a worktree and the head in place;
// benchmarks missing from the baseline run are reported, not gated):
//
//	go test -run='^$' -bench=BenchmarkJobQueue -benchmem -count=3 . > head.txt   # on HEAD
//	go run ./cmd/benchgate -baseline-bench base.txt < head.txt
//
// With -count > 1 the gate scores each benchmark by its best run (max
// ops/sec), which filters scheduler noise the way benchstat's median does
// for larger sample counts. When the run was made with -benchmem, B/op and
// allocs/op from the best run ride along in the baseline and the report —
// informational (the pass/fail verdict is ops/sec only), so allocation
// regressions are visible in the CI artifact without flaking the gate.
//
// -min-ratio "num,den,min" (repeatable) gates a relationship within the
// head run itself: benchmark num's ops/sec must be at least min times
// benchmark den's. Both sides come from the same process on the same
// machine in the same run, so the gate is immune to machine-class skew —
// it pins speedup claims ("binary wire must stay 2x the NDJSON stream,
// batch ingest 3x single-shot") rather than absolute numbers:
//
//	go run ./cmd/benchgate -baseline BENCH_BASELINE.json \
//	    -min-ratio 'BenchmarkJobQueueHTTPJobsPerSec/mode=binary,BenchmarkJobQueueHTTPJobsPerSec/mode=stream,2.0' \
//	    -min-ratio 'BenchmarkJobQueueHTTPJobsPerSec/mode=batch,BenchmarkJobQueueHTTPJobsPerSec/mode=single,3.0' < head.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed reference: best-run ops/sec per benchmark, plus
// the environment it was recorded on (informational).
type Baseline struct {
	// Note describes where the numbers came from.
	Note string `json:"note,omitempty"`
	// OpsPerSec maps full benchmark names (including sub-benchmarks, with
	// the -cpu suffix stripped) to their best observed ops/sec.
	OpsPerSec map[string]float64 `json:"ops_per_sec"`
	// BytesPerOp and AllocsPerOp carry the -benchmem numbers from each
	// benchmark's best run, when the recording run captured them.
	// Informational: the gate's verdict is ops/sec only.
	BytesPerOp  map[string]float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

// benchStat is one benchmark's best observed run.
type benchStat struct {
	ops           float64 // ops/sec, derived from ns/op
	bytes, allocs float64 // -benchmem B/op and allocs/op of the best run
	hasMem        bool
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkName/sub=1-8   1234   56789 ns/op   2 MB/s ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.eE+]+)\s+ns/op`)

// memStats matches the -benchmem tail of a result line. go test appends
// the pair after every custom metric, so anchoring on the unit names is
// robust against ReportMetric columns in between.
var memStats = regexp.MustCompile(`([0-9.eE+]+)\s+B/op\s+([0-9.eE+]+)\s+allocs/op`)

func parse(r io.Reader, echo io.Writer) (map[string]*benchStat, error) {
	best := make(map[string]*benchStat)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line) // pass the raw log through for the CI transcript
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		nsPerOp, err := strconv.ParseFloat(m[3], 64)
		if err != nil || nsPerOp <= 0 {
			continue
		}
		st := &benchStat{ops: 1e9 / nsPerOp}
		if mm := memStats.FindStringSubmatch(line); mm != nil {
			if st.bytes, err = strconv.ParseFloat(mm[1], 64); err == nil {
				if st.allocs, err = strconv.ParseFloat(mm[2], 64); err == nil {
					st.hasMem = true
				}
			}
		}
		if prev, ok := best[m[1]]; !ok || st.ops > prev.ops {
			best[m[1]] = st
		}
	}
	return best, sc.Err()
}

// ratioGate is one -min-ratio constraint: the num benchmark's ops/sec must
// be at least min times the den benchmark's, both taken from the head run.
type ratioGate struct {
	num, den string
	min      float64
}

// parseRatio parses one -min-ratio value, "num,den,min". Benchmark names
// never contain commas (slashes and = only), so a plain split is exact.
func parseRatio(s string) (ratioGate, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return ratioGate{}, fmt.Errorf(`want "numBench,denBench,minRatio", got %q`, s)
	}
	g := ratioGate{num: strings.TrimSpace(parts[0]), den: strings.TrimSpace(parts[1])}
	min, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || min <= 0 {
		return ratioGate{}, fmt.Errorf("min ratio must be a positive number, got %q", parts[2])
	}
	if g.num == "" || g.den == "" || g.num == g.den {
		return ratioGate{}, fmt.Errorf("need two distinct benchmark names, got %q", s)
	}
	g.min = min
	return g, nil
}

// checkRatios evaluates every -min-ratio gate against the head run and
// returns one report line per gate; failures are the lines prefixed FAIL.
func checkRatios(got map[string]*benchStat, gates []ratioGate) (lines []string, failed int) {
	for _, g := range gates {
		num, den := got[g.num], got[g.den]
		switch {
		case num == nil || den == nil:
			missing := g.num
			if num != nil {
				missing = g.den
			}
			failed++
			lines = append(lines, fmt.Sprintf("FAIL ratio %s / %s: benchmark %s missing from the run", g.num, g.den, missing))
		case num.ops < g.min*den.ops:
			failed++
			lines = append(lines, fmt.Sprintf("FAIL ratio %s / %s = %.2fx, want >= %.2fx (%.1f vs %.1f ops/sec)",
				g.num, g.den, num.ops/den.ops, g.min, num.ops, den.ops))
		default:
			lines = append(lines, fmt.Sprintf("ok   ratio %s / %s = %.2fx (>= %.2fx)",
				g.num, g.den, num.ops/den.ops, g.min))
		}
	}
	return lines, failed
}

// memColumn renders a benchmark's -benchmem numbers for the report, empty
// when the run did not capture them.
func memColumn(st *benchStat) string {
	if !st.hasMem {
		return ""
	}
	return fmt.Sprintf("  [%.0f B/op %.0f allocs/op]", st.bytes, st.allocs)
}

func main() {
	var (
		baselinePath  = flag.String("baseline", "BENCH_BASELINE.json", "baseline file to compare against (or write with -update)")
		baselineBench = flag.String("baseline-bench", "", "compare against raw `go test -bench` output in this file instead of the JSON baseline — for same-machine A/B runs (e.g. merge-base vs head in one CI job)")
		match         = flag.String("match", "BenchmarkJobQueue", "only gate benchmarks whose name contains this substring (default covers the dispatch, cache-hit and settle matrices); others are reported informationally")
		tolerance     = flag.Float64("tolerance", 0.20, "maximum allowed fractional ops/sec regression before failing")
		update        = flag.Bool("update", false, "write the observed numbers as the new baseline instead of gating")
	)
	var ratios []ratioGate
	flag.Func("min-ratio", `gate benchmark "num,den,min": num's ops/sec must be at least min times den's within this run (repeatable)`, func(s string) error {
		g, err := parseRatio(s)
		if err != nil {
			return err
		}
		ratios = append(ratios, g)
		return nil
	})
	flag.Parse()

	got, err := parse(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: reading bench output: %v\n", err)
		os.Exit(2)
	}
	if len(got) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results on stdin")
		os.Exit(2)
	}
	// Ratio gates compare within the observed run, independent of any
	// baseline — they hold in -update mode too, so a baseline that breaks
	// a pinned speedup claim can never be recorded.
	ratioLines, ratioFailed := checkRatios(got, ratios)

	if *update {
		b := Baseline{
			Note:      "best-run ops/sec per benchmark; an absolute floor only (recorded on a 1-core 2.1GHz container) - the sensitive regression signal is CI's same-machine merge-base comparison; refresh with cmd/benchgate -update from the gating machine class",
			OpsPerSec: make(map[string]float64, len(got)),
		}
		for name, st := range got {
			b.OpsPerSec[name] = st.ops
			if st.hasMem {
				if b.BytesPerOp == nil {
					b.BytesPerOp = make(map[string]float64)
					b.AllocsPerOp = make(map[string]float64)
				}
				b.BytesPerOp[name] = st.bytes
				b.AllocsPerOp[name] = st.allocs
			}
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(got), *baselinePath)
		for _, line := range ratioLines {
			fmt.Printf("benchgate: %s\n", line)
		}
		if ratioFailed > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %d ratio gate(s) failed on the recording run\n", ratioFailed)
			os.Exit(1)
		}
		return
	}

	var base Baseline
	if *baselineBench != "" {
		f, err := os.Open(*baselineBench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		baseStats, err := parse(f, io.Discard)
		f.Close()
		if err != nil || len(baseStats) == 0 {
			fmt.Fprintf(os.Stderr, "benchgate: no benchmark results in %s (err=%v)\n", *baselineBench, err)
			os.Exit(2)
		}
		base.OpsPerSec = make(map[string]float64, len(baseStats))
		for name, st := range baseStats {
			base.OpsPerSec[name] = st.ops
		}
	} else {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v (run with -update to create it)\n", err)
			os.Exit(2)
		}
		if err := json.Unmarshal(data, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: bad baseline: %v\n", err)
			os.Exit(2)
		}
	}

	names := make([]string, 0, len(got))
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	for _, name := range names {
		ref, ok := base.OpsPerSec[name]
		gated := strings.Contains(name, *match)
		mem := memColumn(got[name])
		switch {
		case !ok:
			fmt.Printf("benchgate: %-60s %12.1f ops/sec (no baseline)%s\n", name, got[name].ops, mem)
		case !gated:
			fmt.Printf("benchgate: %-60s %12.1f ops/sec vs %.1f (info only, %+.1f%%)%s\n",
				name, got[name].ops, ref, 100*(got[name].ops-ref)/ref, mem)
		case got[name].ops < ref*(1-*tolerance):
			failed++
			fmt.Printf("benchgate: FAIL %-55s %12.1f ops/sec vs baseline %.1f (%.1f%% below, tolerance %.0f%%)%s\n",
				name, got[name].ops, ref, 100*(ref-got[name].ops)/ref, 100**tolerance, mem)
		default:
			fmt.Printf("benchgate: ok   %-55s %12.1f ops/sec vs baseline %.1f (%+.1f%%)%s\n",
				name, got[name].ops, ref, 100*(got[name].ops-ref)/ref, mem)
		}
	}
	for _, line := range ratioLines {
		fmt.Printf("benchgate: %s\n", line)
	}
	if failed > 0 || ratioFailed > 0 {
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %d benchmark(s) regressed more than %.0f%%\n", failed, 100**tolerance)
		}
		if ratioFailed > 0 {
			fmt.Fprintf(os.Stderr, "benchgate: %d ratio gate(s) failed\n", ratioFailed)
		}
		os.Exit(1)
	}
}
