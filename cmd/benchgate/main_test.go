package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
BenchmarkJobQueueThroughput/workers=4-8         	     100	   5000000 ns/op	     12800 jobs/sec
BenchmarkJobQueueThroughput/workers=4-8         	     120	   4000000 ns/op	     16000 jobs/sec	     512 B/op	       8 allocs/op
BenchmarkPalrtSpawn/p=2/sched=steal             	 4244977	        85.27 ns/op	      16 B/op	       1 allocs/op
PASS
`
	got, err := parse(strings.NewReader(out), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Best of the two runs: 1e9/4e6 = 250 ops/sec, -cpu suffix stripped.
	tp := got["BenchmarkJobQueueThroughput/workers=4"]
	if tp == nil || tp.ops < 249.9 || tp.ops > 250.1 {
		t.Fatalf("throughput = %+v, want 250 ops/sec (best of runs)", tp)
	}
	// The -benchmem pair rides along from the best run, past the custom
	// jobs/sec metric.
	if !tp.hasMem || tp.bytes != 512 || tp.allocs != 8 {
		t.Fatalf("throughput mem stats = %+v, want 512 B/op, 8 allocs/op", tp)
	}
	sp := got["BenchmarkPalrtSpawn/p=2/sched=steal"]
	if sp == nil {
		t.Fatal("spawn benchmark not parsed")
	}
	if !sp.hasMem || sp.bytes != 16 || sp.allocs != 1 {
		t.Fatalf("spawn mem stats = %+v, want 16 B/op, 1 allocs/op", sp)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
}
