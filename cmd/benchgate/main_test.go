package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
BenchmarkJobQueueThroughput/workers=4-8         	     100	   5000000 ns/op	     12800 jobs/sec
BenchmarkJobQueueThroughput/workers=4-8         	     120	   4000000 ns/op	     16000 jobs/sec	     512 B/op	       8 allocs/op
BenchmarkPalrtSpawn/p=2/sched=steal             	 4244977	        85.27 ns/op	      16 B/op	       1 allocs/op
PASS
`
	got, err := parse(strings.NewReader(out), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Best of the two runs: 1e9/4e6 = 250 ops/sec, -cpu suffix stripped.
	tp := got["BenchmarkJobQueueThroughput/workers=4"]
	if tp == nil || tp.ops < 249.9 || tp.ops > 250.1 {
		t.Fatalf("throughput = %+v, want 250 ops/sec (best of runs)", tp)
	}
	// The -benchmem pair rides along from the best run, past the custom
	// jobs/sec metric.
	if !tp.hasMem || tp.bytes != 512 || tp.allocs != 8 {
		t.Fatalf("throughput mem stats = %+v, want 512 B/op, 8 allocs/op", tp)
	}
	sp := got["BenchmarkPalrtSpawn/p=2/sched=steal"]
	if sp == nil {
		t.Fatal("spawn benchmark not parsed")
	}
	if !sp.hasMem || sp.bytes != 16 || sp.allocs != 1 {
		t.Fatalf("spawn mem stats = %+v, want 16 B/op, 1 allocs/op", sp)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
}

func TestParseRatio(t *testing.T) {
	g, err := parseRatio("Bench/mode=binary, Bench/mode=stream, 2.0")
	if err != nil {
		t.Fatal(err)
	}
	if g.num != "Bench/mode=binary" || g.den != "Bench/mode=stream" || g.min != 2 {
		t.Fatalf("parsed %+v", g)
	}
	for _, bad := range []string{"", "a,b", "a,b,c,d", "a,b,zero", "a,b,0", "a,b,-1", "a,a,2", ",b,2", "a,,2"} {
		if _, err := parseRatio(bad); err == nil {
			t.Errorf("parseRatio(%q) accepted, want error", bad)
		}
	}
}

func TestCheckRatios(t *testing.T) {
	got := map[string]*benchStat{
		"B/mode=binary": {ops: 300000},
		"B/mode=stream": {ops: 140000},
		"B/mode=single": {ops: 17000},
	}
	// 300k/140k = 2.14x: a 2.0x gate passes, a 2.5x gate fails, and a
	// gate naming an absent benchmark fails rather than passing silently.
	lines, failed := checkRatios(got, []ratioGate{
		{num: "B/mode=binary", den: "B/mode=stream", min: 2.0},
		{num: "B/mode=binary", den: "B/mode=stream", min: 2.5},
		{num: "B/mode=batch", den: "B/mode=single", min: 3.0},
	})
	if failed != 2 || len(lines) != 3 {
		t.Fatalf("failed = %d (want 2), lines:\n%s", failed, strings.Join(lines, "\n"))
	}
	if !strings.HasPrefix(lines[0], "ok   ratio") {
		t.Errorf("passing gate line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "FAIL") || !strings.Contains(lines[1], "2.14x") {
		t.Errorf("failing gate line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "missing") {
		t.Errorf("absent benchmark line = %q", lines[2])
	}
	if lines, failed := checkRatios(got, nil); failed != 0 || len(lines) != 0 {
		t.Fatalf("no gates must produce no lines, got %d/%v", failed, lines)
	}
}
