package main

import (
	"io"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
BenchmarkJobQueueThroughput/workers=4-8         	     100	   5000000 ns/op	     12800 jobs/sec
BenchmarkJobQueueThroughput/workers=4-8         	     120	   4000000 ns/op	     16000 jobs/sec
BenchmarkPalrtSpawn/p=2/sched=steal             	 4244977	        85.27 ns/op	      16 B/op
PASS
`
	got, err := parse(strings.NewReader(out), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Best of the two runs: 1e9/4e6 = 250 ops/sec, -cpu suffix stripped.
	if ops := got["BenchmarkJobQueueThroughput/workers=4"]; ops < 249.9 || ops > 250.1 {
		t.Fatalf("throughput ops/sec = %v, want 250 (best of runs)", ops)
	}
	if _, ok := got["BenchmarkPalrtSpawn/p=2/sched=steal"]; !ok {
		t.Fatal("spawn benchmark not parsed")
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
}
