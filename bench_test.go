// Benchmarks regenerating every figure and table of the LoPRAM paper, one
// benchmark family per experiment of EXPERIMENTS.md, plus the ablation
// benchmarks called out in DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// Sub-benchmarks sweep the processor count, so `benchstat` comparisons show
// the speedup shape directly in the ns/op column.
package lopram_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"lopram/internal/core"
	"lopram/internal/crew"
	"lopram/internal/dandc"
	"lopram/internal/dp"
	"lopram/internal/jobqueue"
	"lopram/internal/lopramhttp"
	"lopram/internal/master"
	"lopram/internal/memo"
	"lopram/internal/palrt"
	"lopram/internal/pram"
	"lopram/internal/sim"
	"lopram/internal/wire"
	"lopram/internal/workload"
)

// ---- E1: Figure 1 ----

func msortFig(n int) sim.Func {
	return func(tc *sim.TC) {
		tc.Work(1)
		if n <= 1 {
			return
		}
		tc.Do(msortFig(n/2), msortFig(n-n/2))
	}
}

// BenchmarkFig1MergesortTree regenerates the Figure 1 schedule (n=16, p=4).
func BenchmarkFig1MergesortTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := sim.New(sim.Config{P: 4, Trace: true})
		res := m.MustRun(msortFig(16))
		if res.Threads != 31 {
			b.Fatal("wrong tree")
		}
	}
}

// ---- E2: Figure 2 (frontier) ----

func BenchmarkFig2Frontier(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			cm := dandc.CostModel{Rec: dandc.Mergesort(), SpawnDepth: -1}
			for i := 0; i < b.N; i++ {
				m := sim.New(sim.Config{P: p})
				m.MustRun(cm.Program(256))
			}
		})
	}
}

// ---- E3–E6: Theorem 1 cases and Equation 5 ----

func benchTheorem(b *testing.B, rec master.IntRec, mode dandc.MergeMode, n int64) {
	b.Helper()
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			frontier := master.FrontierDepth(p, rec.A)
			cm := dandc.CostModel{Rec: rec, Mode: mode, SpawnDepth: frontier + 2}
			if mode == dandc.ParMerge {
				cm.MergeChunks = p
			}
			var steps int64
			for i := 0; i < b.N; i++ {
				m := sim.New(sim.Config{P: p})
				steps = m.MustRun(cm.Program(n)).Steps
			}
			b.ReportMetric(float64(steps), "sim-steps")
			b.ReportMetric(float64(rec.Seq(n))/float64(steps), "speedup")
		})
	}
}

// BenchmarkThm1Case1 regenerates the E3 table: T(n) = 4T(n/2) + n.
func BenchmarkThm1Case1(b *testing.B) {
	benchTheorem(b, dandc.Case1Rec(), dandc.SeqMerge, 1<<12)
}

// BenchmarkThm1Case2 regenerates the E4 table: mergesort.
func BenchmarkThm1Case2(b *testing.B) {
	benchTheorem(b, dandc.Mergesort(), dandc.SeqMerge, 1<<18)
}

// BenchmarkThm1Case3Seq regenerates the E5 table: no speedup.
func BenchmarkThm1Case3Seq(b *testing.B) {
	benchTheorem(b, dandc.Case3Rec(), dandc.SeqMerge, 1<<11)
}

// BenchmarkThm1Case3Par regenerates the E6 table: Equation 5.
func BenchmarkThm1Case3Par(b *testing.B) {
	benchTheorem(b, dandc.Case3Rec(), dandc.ParMerge, 1<<11)
}

// ---- E7: p = O(log n) premise ----

func BenchmarkLogBoundSaturation(b *testing.B) {
	rec := dandc.Mergesort()
	for _, p := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			frontier := master.FrontierDepth(p, rec.A)
			cm := dandc.CostModel{Rec: rec, SpawnDepth: frontier + 2}
			for i := 0; i < b.N; i++ {
				m := sim.New(sim.Config{P: p})
				m.MustRun(cm.Program(1 << 10))
			}
		})
	}
}

// ---- E8–E10, E14: parallel DP ----

func editDistSpec(n int) *dp.EditDistanceSpec {
	r := workload.NewRNG(8)
	a, bb := workload.RelatedStrings(r, n, 4, n/8)
	return dp.NewEditDistance(a, bb)
}

// BenchmarkDPEditDistance regenerates E8: Algorithm 1 on the simulator.
func BenchmarkDPEditDistance(b *testing.B) {
	spec := editDistSpec(96)
	g := dp.BuildGraph(spec)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				prog, _ := dp.Program(spec, g, dp.SimOptions{})
				m := sim.New(sim.Config{P: p})
				steps = m.MustRun(prog).Steps
			}
			b.ReportMetric(float64(steps), "sim-steps")
		})
	}
}

// BenchmarkDPEditDistanceRuntime is E8's real-hardware counterpart: the
// counter scheduler on goroutines.
func BenchmarkDPEditDistanceRuntime(b *testing.B) {
	spec := editDistSpec(600)
	g := dp.BuildGraph(spec)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dp.RunCounter(spec, g, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDPChain regenerates E9: the 1-D chain gains nothing.
func BenchmarkDPChain(b *testing.B) {
	spec := dp.NewPrefixSum(make([]int64, 400))
	g := dp.BuildGraph(spec)
	for _, p := range []int{1, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				prog, _ := dp.Program(spec, g, dp.SimOptions{})
				m := sim.New(sim.Config{P: p})
				steps = m.MustRun(prog).Steps
			}
			b.ReportMetric(float64(steps), "sim-steps")
		})
	}
}

// BenchmarkDPMatrixChain regenerates E10: the interval DP.
func BenchmarkDPMatrixChain(b *testing.B) {
	r := workload.NewRNG(10)
	spec := dp.NewMatrixChain(workload.ChainDims(r, 32, 4, 50))
	g := dp.BuildGraph(spec)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				prog, _ := dp.Program(spec, g, dp.SimOptions{})
				m := sim.New(sim.Config{P: p})
				steps = m.MustRun(prog).Steps
			}
			b.ReportMetric(float64(steps), "sim-steps")
		})
	}
}

// BenchmarkDPBuildGraph regenerates E14: parallel DAG construction.
func BenchmarkDPBuildGraph(b *testing.B) {
	spec := editDistSpec(256)
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rt := palrt.New(p)
			for i := 0; i < b.N; i++ {
				dp.BuildGraphParallel(rt, spec)
			}
		})
	}
}

// ---- E11: memoization ----

// BenchmarkMemoMatrixChain regenerates E11.
func BenchmarkMemoMatrixChain(b *testing.B) {
	r := workload.NewRNG(11)
	spec := dp.NewMatrixChain(workload.ChainDims(r, 48, 4, 40))
	root := spec.Cells() - 1
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rt := palrt.New(p)
				memo.Run(rt, spec, root)
			}
		})
	}
}

// ---- E12: CRCW-on-CREW ----

// BenchmarkCRCWSim regenerates E12: combining-tree cost per width.
func BenchmarkCRCWSim(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			contrib := make([]int64, k)
			for i := range contrib {
				contrib[i] = int64(i)
			}
			var steps int
			for i := 0; i < b.N; i++ {
				_, steps = crew.SimulateCRCW(contrib, crew.Sum)
			}
			b.ReportMetric(float64(steps), "crew-steps")
		})
	}
}

// ---- E13: real runtime wall clock ----

// BenchmarkRuntimeMergesort regenerates E13: ns/op across p IS the table.
func BenchmarkRuntimeMergesort(b *testing.B) {
	r := workload.NewRNG(13)
	base := workload.Ints(r, 1<<20, 1<<30)
	for _, p := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rt := palrt.New(p)
			buf := make([]int, len(base))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(buf, base)
				b.StartTimer()
				if p == 1 {
					dandc.MergeSortSeq(buf)
				} else {
					dandc.MergeSort(rt, buf)
				}
			}
		})
	}
}

// BenchmarkRuntimeStrassen: Case 1 on real hardware.
func BenchmarkRuntimeStrassen(b *testing.B) {
	r := workload.NewRNG(14)
	n := 256
	ma := dandc.Mat{N: n, Data: workload.Floats(r, n*n)}
	mb := dandc.Mat{N: n, Data: workload.Floats(r, n*n)}
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rt := palrt.New(p)
			for i := 0; i < b.N; i++ {
				if p == 1 {
					dandc.StrassenSeq(ma, mb)
				} else {
					dandc.Strassen(rt, ma, mb)
				}
			}
		})
	}
}

// BenchmarkRuntimeKaratsuba: Case 1 polynomial multiplication.
func BenchmarkRuntimeKaratsuba(b *testing.B) {
	r := workload.NewRNG(15)
	pa := workload.Int64s(r, 1<<13)
	pb := workload.Int64s(r, 1<<13)
	for i := range pa {
		pa[i] %= 1000
		pb[i] %= 1000
	}
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rt := palrt.New(p)
			for i := 0; i < b.N; i++ {
				if p == 1 {
					dandc.KaratsubaSeq(pa, pb)
				} else {
					dandc.Karatsuba(rt, pa, pb)
				}
			}
		})
	}
}

// ---- Ablations (DESIGN.md §5) ----

// BenchmarkAblationSpawnPolicy: palthreads handoff vs spawn-everything.
func BenchmarkAblationSpawnPolicy(b *testing.B) {
	r := workload.NewRNG(21)
	base := workload.Ints(r, 1<<19, 1<<30)
	buf := make([]int, len(base))
	b.Run("handoff", func(b *testing.B) {
		rt := palrt.New(8)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(buf, base)
			b.StartTimer()
			dandc.MergeSort(rt, buf)
		}
	})
	b.Run("always-spawn", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			copy(buf, base)
			b.StartTimer()
			naiveSort(buf, make([]int, len(buf)))
		}
	})
}

func naiveSort(a, tmp []int) {
	if len(a) <= 1<<11 {
		dandc.MergeSortSeq(a)
		return
	}
	mid := len(a) / 2
	palrt.AlwaysSpawn(
		func() { naiveSort(a[:mid], tmp[:mid]) },
		func() { naiveSort(a[mid:], tmp[mid:]) },
	)
	i, j, k := 0, mid, 0
	for i < mid && j < len(a) {
		if a[j] < a[i] {
			tmp[k] = a[j]
			j++
		} else {
			tmp[k] = a[i]
			i++
		}
		k++
	}
	copy(tmp[k:], a[i:mid])
	copy(tmp[k+mid-i:], a[j:])
	copy(a, tmp)
}

// BenchmarkAblationDPScheduler: Algorithm 1 counters vs level barriers.
func BenchmarkAblationDPScheduler(b *testing.B) {
	spec := editDistSpec(400)
	g := dp.BuildGraph(spec)
	b.Run("counters", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dp.RunCounter(spec, g, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("level-barrier", func(b *testing.B) {
		rt := palrt.New(8)
		for i := 0; i < b.N; i++ {
			if _, err := dp.RunLevels(spec, g, rt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCounters: serialized cells vs raw atomics for the
// dependency counters.
func BenchmarkAblationCounters(b *testing.B) {
	b.Run("serialized-cell", func(b *testing.B) {
		var s crew.Serialized[int64]
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				s.Update(func(v int64) int64 { return v + 1 })
			}
		})
	})
	b.Run("atomic", func(b *testing.B) {
		var v atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				v.Add(1)
			}
		})
	})
}

// BenchmarkAblationActivationOrder: preorder vs FIFO vs LIFO global policy.
func BenchmarkAblationActivationOrder(b *testing.B) {
	cm := dandc.CostModel{Rec: dandc.Mergesort(), SpawnDepth: -1}
	for _, pol := range []sim.Policy{sim.Preorder, sim.FIFO, sim.LIFO} {
		b.Run(pol.String(), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				m := sim.New(sim.Config{P: 4, Policy: pol})
				steps = m.MustRun(cm.Program(1 << 10)).Steps
			}
			b.ReportMetric(float64(steps), "sim-steps")
		})
	}
}

// ---- substrate microbenchmarks ----

// BenchmarkSimSchedulerThroughput measures scheduler cost per pal-thread.
func BenchmarkSimSchedulerThroughput(b *testing.B) {
	cm := dandc.CostModel{Rec: dandc.FigureRec(), SpawnDepth: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := sim.New(sim.Config{P: 4})
		res := m.MustRun(cm.Program(1 << 10))
		if res.Threads != 2*(1<<10)-1 {
			b.Fatal("wrong thread count")
		}
	}
}

// BenchmarkRNG measures the workload generator.
func BenchmarkRNG(b *testing.B) {
	r := workload.NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

// ---- E15/E16: scan formulations and PRAM emulation ----

// BenchmarkScanDandC regenerates E15's D&C side: the work-optimal two-pass
// parallel scan on the host.
func BenchmarkScanDandC(b *testing.B) {
	r := workload.NewRNG(16)
	a := workload.Int64s(r, 1<<22)
	for i := range a {
		a[i] %= 1000
	}
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rt := palrt.New(p)
			for i := 0; i < b.N; i++ {
				if p == 1 {
					dandc.PrefixSumsSeq(a)
				} else {
					dandc.PrefixSums(rt, a)
				}
			}
		})
	}
}

// BenchmarkPRAMEmulation regenerates E16: Brent-emulated Hillis–Steele scan
// step counts vs the native LoPRAM scan's.
func BenchmarkPRAMEmulation(b *testing.B) {
	r := workload.NewRNG(17)
	in := workload.Int64s(r, 1<<12)
	for i := range in {
		in[i] %= 1000
	}
	prog := pram.HillisSteele{Input: in}
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var tp int64
			for i := 0; i < b.N; i++ {
				res := pram.Emulate(prog, p)
				tp = res.TimeP
			}
			b.ReportMetric(float64(tp), "emulated-steps")
		})
	}
}

// ---- selection: the Case 3 wall on a real algorithm ----

// BenchmarkRuntimeSelect compares sequential quickselect against the
// parallel-partition selection across p (Equation 5 on real data).
func BenchmarkRuntimeSelect(b *testing.B) {
	r := workload.NewRNG(18)
	a := workload.Ints(r, 1<<22, 1<<30)
	k := len(a) / 2
	for _, p := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rt := palrt.New(p)
			for i := 0; i < b.N; i++ {
				if p == 1 {
					dandc.SelectSeq(a, k)
				} else {
					dandc.Select(rt, a, k)
				}
			}
		})
	}
}

// BenchmarkRuntimeFFT: Case 2 on real hardware.
func BenchmarkRuntimeFFT(b *testing.B) {
	r := workload.NewRNG(19)
	x := make([]complex128, 1<<16)
	for i := range x {
		x[i] = complex(r.Float64(), r.Float64())
	}
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rt := palrt.New(p)
			for i := 0; i < b.N; i++ {
				if p == 1 {
					dandc.FFTSeq(x)
				} else {
					dandc.FFT(rt, x)
				}
			}
		})
	}
}

// BenchmarkStdThreads measures the standard-thread multitasking scheduler.
func BenchmarkStdThreads(b *testing.B) {
	for _, s := range []int{4, 64} {
		b.Run(fmt.Sprintf("threads=%d", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := sim.New(sim.Config{P: 4})
				m.MustRun(func(tc *sim.TC) {
					kids := make([]sim.Func, s)
					for k := range kids {
						kids[k] = func(tc *sim.TC) { tc.Work(100) }
					}
					tc.Launch(kids...)
				})
			}
		})
	}
}

// BenchmarkJobQueueThroughput measures the dispatch service's end-to-end
// jobs/sec across the (workers, shards) matrix: each iteration fans a
// batch of small deterministic simulator jobs out from four concurrent
// submitters and waits for all of them — concurrent submission is what
// makes dispatch-path contention (shard locks, run-queue hand-off)
// visible next to the execution cost. The result cache is disabled so
// every job executes. workers=4/shards=4 against workers=4/shards=1 is
// the sharding acceptance pair; cmd/benchgate gates both via
// BENCH_BASELINE.json.
func BenchmarkJobQueueThroughput(b *testing.B) {
	var seed atomic.Uint64
	for _, c := range []struct{ workers, shards int }{
		{1, 1}, {4, 1}, {4, 4}, {16, 4},
	} {
		b.Run(fmt.Sprintf("workers=%d/shards=%d", c.workers, c.shards), func(b *testing.B) {
			q := jobqueue.New(jobqueue.Config{
				Workers: c.workers, Shards: c.shards,
				QueueDepth: 8192, CacheSize: -1,
			})
			defer q.Close()
			const batch = 64
			const submitters = 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for s := 0; s < submitters; s++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						jobs := make([]*jobqueue.Job, 0, batch/submitters)
						for j := 0; j < batch/submitters; j++ {
							job, err := q.Submit(jobqueue.Spec{
								Algorithm: "reduce", N: 256, P: 4,
								Engine: core.EngineSim, Seed: seed.Add(1),
							})
							if err != nil {
								b.Error(err)
								return
							}
							jobs = append(jobs, job)
						}
						for _, job := range jobs {
							if _, err := job.Wait(context.Background()); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*batch)/secs, "jobs/sec")
			}
		})
	}
}

// BenchmarkJobQueueClasses measures dispatch throughput under the
// deficit-weighted-round-robin class discipline across a (classes,
// shards) matrix: the default 2-class strict/weighted set vs a 4-class
// all-weighted set, with four concurrent submitters spraying jobs
// round-robin across every class. It prices the DWRR bookkeeping and the
// per-class admission lanes next to BenchmarkJobQueueThroughput's
// default-class numbers; cmd/benchgate gates both via
// BENCH_BASELINE.json.
func BenchmarkJobQueueClasses(b *testing.B) {
	classSets := map[int]jobqueue.ClassSet{
		2: nil, // the default strict-interactive/batch pair
		4: {
			{Name: "gold", Weight: 8},
			{Name: "silver", Weight: 4},
			{Name: "bronze", Weight: 2},
			{Name: "scavenger", Weight: 1},
		},
	}
	var seed atomic.Uint64
	for _, c := range []struct{ classes, shards int }{
		{2, 1}, {2, 4}, {4, 1}, {4, 4},
	} {
		b.Run(fmt.Sprintf("classes=%d/shards=%d", c.classes, c.shards), func(b *testing.B) {
			set := classSets[c.classes]
			q := jobqueue.New(jobqueue.Config{
				Workers: 4, Shards: c.shards,
				QueueDepth: 8192, CacheSize: -1,
				Classes: set,
			})
			defer q.Close()
			names := make([]jobqueue.Class, 0, c.classes)
			for _, cs := range q.Classes() {
				names = append(names, cs.Name)
			}
			const batch = 64
			const submitters = 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for s := 0; s < submitters; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						jobs := make([]*jobqueue.Job, 0, batch/submitters)
						for j := 0; j < batch/submitters; j++ {
							job, err := q.Submit(jobqueue.Spec{
								Algorithm: "reduce", N: 256, P: 4,
								Engine: core.EngineSim, Seed: seed.Add(1),
								Priority: names[(s+j)%len(names)],
							})
							if err != nil {
								b.Error(err)
								return
							}
							jobs = append(jobs, job)
						}
						for _, job := range jobs {
							if _, err := job.Wait(context.Background()); err != nil {
								b.Error(err)
								return
							}
						}
					}(s)
				}
				wg.Wait()
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*batch)/secs, "jobs/sec")
			}
		})
	}
}

// BenchmarkJobQueueResize prices the epoch-based placement table's
// steady state: dispatch throughput on a 4-shard table reached by a live
// 1→4 resize (carried-over rings and retention, re-dealt workers; the
// result cache is disabled so every job executes, as in the other
// dispatch matrices) against a queue cold-started at 4 shards. The two must be within noise
// of each other — a resized table is a first-class table, not a degraded
// one; cmd/benchgate gates both via BENCH_BASELINE.json. The resize
// itself happens outside the timed region: what is measured is what the
// table leaves behind.
func BenchmarkJobQueueResize(b *testing.B) {
	var seed atomic.Uint64
	run := func(b *testing.B, q *jobqueue.Queue) {
		const batch = 64
		const submitters = 4
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					jobs := make([]*jobqueue.Job, 0, batch/submitters)
					for j := 0; j < batch/submitters; j++ {
						job, err := q.Submit(jobqueue.Spec{
							Algorithm: "reduce", N: 256, P: 4,
							Engine: core.EngineSim, Seed: seed.Add(1),
						})
						if err != nil {
							b.Error(err)
							return
						}
						jobs = append(jobs, job)
					}
					for _, job := range jobs {
						if _, err := job.Wait(context.Background()); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
		}
		b.StopTimer()
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N*batch)/secs, "jobs/sec")
		}
	}
	b.Run("table=cold4", func(b *testing.B) {
		q := jobqueue.New(jobqueue.Config{
			Workers: 4, Shards: 4,
			QueueDepth: 8192, CacheSize: -1,
		})
		defer q.Close()
		run(b, q)
	})
	b.Run("table=resized1to4", func(b *testing.B) {
		q := jobqueue.New(jobqueue.Config{
			Workers: 4, Shards: 1,
			QueueDepth: 8192, CacheSize: -1,
		})
		defer q.Close()
		// Warm the 1-shard table so the resize migrates real state
		// (retention entries and latency samples).
		for w := 0; w < 64; w++ {
			job, err := q.Submit(jobqueue.Spec{
				Algorithm: "reduce", N: 256, P: 4,
				Engine: core.EngineSim, Seed: seed.Add(1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := job.Wait(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := q.Resize(4); err != nil {
			b.Fatal(err)
		}
		run(b, q)
	})
}

// BenchmarkJobQueuePolicies prices the pluggable dequeue policies across
// the (policy, shards) matrix with the same concurrent-submitter load as
// BenchmarkJobQueueThroughput: policy=default must be within noise of
// that benchmark's workers=4 rows (the native channel path is untouched
// when the default policy is selected), while fcfs/sjf/edf pay the
// ordered path's cross-shard scan — the documented price of a policy
// that ranks the whole backlog; cmd/benchgate gates every cell via
// BENCH_BASELINE.json.
func BenchmarkJobQueuePolicies(b *testing.B) {
	var seed atomic.Uint64
	for _, policy := range []string{"default", "fcfs", "sjf", "edf"} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("policy=%s/shards=%d", policy, shards), func(b *testing.B) {
				q := jobqueue.New(jobqueue.Config{
					Workers: 4, Shards: shards,
					QueueDepth: 8192, CacheSize: -1,
					Policies: jobqueue.Policies{Dequeue: policy},
				})
				defer q.Close()
				const batch = 64
				const submitters = 4
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for s := 0; s < submitters; s++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							jobs := make([]*jobqueue.Job, 0, batch/submitters)
							for j := 0; j < batch/submitters; j++ {
								job, err := q.Submit(jobqueue.Spec{
									Algorithm: "reduce", N: 256, P: 4,
									Engine: core.EngineSim, Seed: seed.Add(1),
								})
								if err != nil {
									b.Error(err)
									return
								}
								jobs = append(jobs, job)
							}
							for _, job := range jobs {
								if _, err := job.Wait(context.Background()); err != nil {
									b.Error(err)
									return
								}
							}
						}()
					}
					wg.Wait()
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N*batch)/secs, "jobs/sec")
				}
			})
		}
	}
}

// BenchmarkJobQueueHTTPJobsPerSec measures end-to-end HTTP ingest
// throughput across the three submit shapes — mode=single (one POST
// /v1/jobs?wait=1 per job), mode=batch (one POST /v1/jobs:batch array
// per submitter) and mode=stream (one POST /v1/jobs:stream NDJSON
// connection per submitter) — with four concurrent submitters against a
// real httptest server, 256 cheap executing jobs per op (sub-µs pram
// reduce, cache disabled), so the serving overhead the batch path
// amortizes (request framing, handler dispatch, per-job response
// encoding) dominates the numbers. mode=binary is the same one
// connection per submitter speaking the length-prefixed binary wire
// protocol through wire.Client instead of NDJSON. This is the
// acceptance benchmark for the ingest fast paths: mode=batch must
// sustain at least 3× mode=single jobs/sec, and mode=binary at least
// 2× mode=stream — and cmd/benchgate gates all four modes via
// BENCH_BASELINE.json plus -min-ratio checks on both ratios.
func BenchmarkJobQueueHTTPJobsPerSec(b *testing.B) {
	const jobs = 256
	const submitters = 4
	const perSub = jobs / submitters
	var seed atomic.Uint64
	specLine := func() string {
		return fmt.Sprintf(`{"algorithm":"reduce","n":8,"p":1,"engine":"pram","seed":%d}`, seed.Add(1))
	}
	// One request per submitter per op; the driver builds the body and
	// fails the benchmark on any non-200 or short response.
	do := func(b *testing.B, client *http.Client, url, contentType string, body *bytes.Buffer) {
		resp, err := client.Post(url, contentType, body)
		if err != nil {
			b.Error(err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Errorf("status %d", resp.StatusCode)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Error(err)
		}
	}
	modes := []struct {
		name string
		sub  func(b *testing.B, client *http.Client, base string)
	}{
		{"single", func(b *testing.B, client *http.Client, base string) {
			for j := 0; j < perSub; j++ {
				var buf bytes.Buffer
				buf.WriteString(specLine())
				do(b, client, base+"/v1/jobs?wait=1", "application/json", &buf)
			}
		}},
		{"batch", func(b *testing.B, client *http.Client, base string) {
			var buf bytes.Buffer
			buf.WriteByte('[')
			for j := 0; j < perSub; j++ {
				if j > 0 {
					buf.WriteByte(',')
				}
				buf.WriteString(specLine())
			}
			buf.WriteByte(']')
			do(b, client, base+"/v1/jobs:batch", "application/json", &buf)
		}},
		{"stream", func(b *testing.B, client *http.Client, base string) {
			var buf bytes.Buffer
			for j := 0; j < perSub; j++ {
				buf.WriteString(specLine())
				buf.WriteByte('\n')
			}
			do(b, client, base+"/v1/jobs:stream", "application/x-ndjson", &buf)
		}},
		{"binary", func(b *testing.B, client *http.Client, base string) {
			cl, err := wire.NewClient(client, base, wire.ProtoBinary, nil)
			if err != nil {
				b.Error(err)
				return
			}
			specs := make([]jobqueue.Spec, perSub)
			for j := range specs {
				specs[j] = jobqueue.Spec{
					Algorithm: "reduce", N: 8, P: 1,
					Engine: core.EnginePRAM, Seed: seed.Add(1),
				}
			}
			results, err := cl.Stream(specs)
			if err != nil {
				b.Error(err)
				return
			}
			if len(results) != perSub {
				b.Errorf("binary stream settled %d of %d jobs", len(results), perSub)
			}
		}},
	}
	for _, mode := range modes {
		b.Run(fmt.Sprintf("mode=%s", mode.name), func(b *testing.B) {
			q := jobqueue.New(jobqueue.Config{
				Workers: 4, QueueDepth: 8192, CacheSize: -1,
			})
			defer q.Close()
			srv := httptest.NewServer(lopramhttp.NewMux(q))
			defer srv.Close()
			client := srv.Client()
			// Keep every submitter's connection in the idle pool (the
			// default caps at 2 per host), so the steady state measures
			// the wire protocols rather than TCP dials.
			if tr, ok := client.Transport.(*http.Transport); ok {
				tr.MaxIdleConnsPerHost = submitters
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for s := 0; s < submitters; s++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						mode.sub(b, client, srv.URL)
					}()
				}
				wg.Wait()
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*jobs)/secs, "jobs/sec")
			}
		})
	}
}

// BenchmarkJobQueueCacheHit measures the lock-free cache-hit fast path:
// four concurrent submitters spray Submit calls over a 64-key hot set
// that was fully executed during warmup, so every timed submission is
// served from the shard's atomic read index without taking the shard
// lock. shards=1 is the pure contention case — before the lock-free
// index every hit serialized on the one shard mutex — and shards=4
// shows the path scales past what sharding alone buys; cmd/benchgate
// gates both via BENCH_BASELINE.json (acceptance: ≥1.5× the locked-path
// baseline on the same machine).
func BenchmarkJobQueueCacheHit(b *testing.B) {
	const hotKeys = 64
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			q := jobqueue.New(jobqueue.Config{
				Workers: 4, Shards: shards,
				QueueDepth: 8192, CacheSize: 4096,
			})
			defer q.Close()
			spec := func(seed uint64) jobqueue.Spec {
				return jobqueue.Spec{
					Algorithm: "reduce", N: 256, P: 4,
					Engine: core.EngineSim, Seed: seed,
				}
			}
			// Execute every hot key once; Wait returns only after the
			// owning flush has published the result to the read index.
			for k := uint64(0); k < hotKeys; k++ {
				job, err := q.Submit(spec(k))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := job.Wait(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			const batch = 256
			const submitters = 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for s := 0; s < submitters; s++ {
					wg.Add(1)
					go func(s int) {
						defer wg.Done()
						rng := uint64(s)*2654435761 + 1
						for j := 0; j < batch/submitters; j++ {
							rng = rng*6364136223846793005 + 1442695040888963407
							job, err := q.Submit(spec(rng % hotKeys))
							if err != nil {
								b.Error(err)
								return
							}
							res, err := job.Result()
							if err != nil {
								b.Error(err)
								return
							}
							if !res.Cached {
								b.Error("hot key missed the cache")
								return
							}
						}
					}(s)
				}
				wg.Wait()
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N*batch)/secs, "jobs/sec")
			}
		})
	}
}

// BenchmarkJobQueueSettle prices the batched completion path: unique
// sub-µs PRAM jobs (cache disabled, so every one executes and settles)
// on one shard, where before batching each completion took the shard
// lock individually and the settle rate was the shard's lock rate. The
// per-op job count (256) is a multiple of the flush threshold so full
// flushes dominate; cmd/benchgate gates it via BENCH_BASELINE.json.
func BenchmarkJobQueueSettle(b *testing.B) {
	var seed atomic.Uint64
	q := jobqueue.New(jobqueue.Config{
		Workers: 4, Shards: 1,
		QueueDepth: 8192, CacheSize: -1,
	})
	defer q.Close()
	const batch = 256
	const submitters = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				jobs := make([]*jobqueue.Job, 0, batch/submitters)
				for j := 0; j < batch/submitters; j++ {
					job, err := q.Submit(jobqueue.Spec{
						Algorithm: "reduce", N: 8, P: 1,
						Engine: core.EnginePRAM, Seed: seed.Add(1),
					})
					if err != nil {
						b.Error(err)
						return
					}
					jobs = append(jobs, job)
				}
				for _, job := range jobs {
					if _, err := job.Wait(context.Background()); err != nil {
						b.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*batch)/secs, "jobs/sec")
	}
}

// ---- palrt work-stealing scheduler matrix ----
//
// BenchmarkPalrt{Spawn,Steal,DandC,DP} sweep processor count and task grain
// for the goroutine runtime, with the retained permit-channel runtime as
// the A/B baseline (sched=permit). The CI bench job runs these at
// -benchtime=1x as a smoke test; the acceptance number for the scheduler is
// BenchmarkPalrtDandC/p=8: ops/sec of sched=steal vs sched=permit.

// palDoer is the scheduling surface shared by the work-stealing RT and the
// permit-channel baseline.
type palDoer interface {
	Do(children ...func())
	P() int
}

func palSchedulers(p int) map[string]func() palDoer {
	return map[string]func() palDoer{
		"steal":  func() palDoer { return palrt.New(p) },
		"permit": func() palDoer { return palrt.NewPermit(p) },
	}
}

// benchBusy burns deterministic CPU proportional to units.
func benchBusy(units int) int64 {
	var s int64
	for i := 0; i < units; i++ {
		s += int64(i ^ (i >> 3))
	}
	return s
}

// benchDandCTree is the paper-shaped D&C recursion: binary spawning down to
// the frontier depth (one level past processor saturation, like
// dandc.CostModel.SpawnDepth = FrontierDepth+), sequential leaf work below
// it. depth log2(2p) gives 2p leaves, so the runtime is saturated and the
// last level exercises the inline fallback.
func benchDandCTree(rt palDoer, depth, leafUnits int, sink *atomic.Int64) {
	if depth == 0 {
		sink.Add(benchBusy(leafUnits))
		return
	}
	rt.Do(
		func() { benchDandCTree(rt, depth-1, leafUnits, sink) },
		func() { benchDandCTree(rt, depth-1, leafUnits, sink) },
	)
}

// frontierDepth is ceil(log2(2p)): the spawn depth at which a binary tree
// saturates p processors, plus one.
func frontierDepth(p int) int {
	d := 0
	for 1<<d < 2*p {
		d++
	}
	return d
}

// BenchmarkPalrtSpawn measures the bare cost of offering one child and
// joining it: a two-child block with no leaf work, the worst case for
// per-spawn overhead.
func BenchmarkPalrtSpawn(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		for _, sched := range []string{"steal", "permit"} {
			rt := palSchedulers(p)[sched]()
			b.Run(fmt.Sprintf("p=%d/sched=%s", p, sched), func(b *testing.B) {
				b.ReportAllocs()
				noop := func() {}
				for i := 0; i < b.N; i++ {
					rt.Do(noop, noop)
				}
			})
		}
	}
}

// BenchmarkPalrtSteal offers a wide flat block of medium-grain children so
// idle processors must claim work from the submitting processor's deque; it
// reports how many children were actually stolen per op. Each child yields
// once mid-task (modeling work that blocks), so worker goroutines get
// scheduled even when GOMAXPROCS serializes the host and claims move to
// other processors' deques.
func BenchmarkPalrtSteal(b *testing.B) {
	const kids, units = 64, 4096
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			rt := palrt.New(p)
			var sink atomic.Int64
			jobs := make([]func(), kids)
			for i := range jobs {
				jobs[i] = func() {
					sink.Add(benchBusy(units / 2))
					runtime.Gosched()
					sink.Add(benchBusy(units / 2))
				}
			}
			rt.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Do(jobs...)
			}
			b.StopTimer()
			s := rt.StatsSnapshot()
			if off := s.Offered(); off > 0 {
				b.ReportMetric(float64(s.Stolen)/float64(b.N), "steals/op")
				b.ReportMetric(float64(s.Spawned)/float64(off), "spawned-frac")
			}
		})
	}
}

// BenchmarkPalrtDandC runs the frontier-truncated D&C recursion across the
// full (p, grain, scheduler) matrix — the acceptance benchmark for the
// work-stealing runtime. Each op is one computation arriving on an idle
// runtime (the serving pattern), so the permit baseline pays its per-spawn
// goroutine creation and the deque scheduler its pooled fast path.
func BenchmarkPalrtDandC(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		for _, grain := range []int{64, 1024} {
			for _, sched := range []string{"steal", "permit"} {
				mk := palSchedulers(p)[sched]
				b.Run(fmt.Sprintf("p=%d/grain=%d/sched=%s", p, grain, sched), func(b *testing.B) {
					b.ReportAllocs()
					rt := mk()
					depth := frontierDepth(p)
					var sink atomic.Int64
					for i := 0; i < b.N; i++ {
						benchDandCTree(rt, depth, grain, &sink)
					}
				})
			}
		}
	}
}

// BenchmarkPalrtDP drives the DP counter scheduler through the catalogue's
// edit-distance entry on the goroutine engine: the serving layer's DP path
// end to end, across p and problem size (the DP grain).
func BenchmarkPalrtDP(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		for _, n := range []int{128, 512} {
			b.Run(fmt.Sprintf("p=%d/n=%d", p, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.RunAlgorithm("editdistance", core.EnginePalrt, n, p, 7); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
