// Package lopram is a full reproduction of "Optimal Speedup on a Low-Degree
// Multi-Core Parallel Architecture (LoPRAM)" by Dorrigiv, López-Ortiz and
// Salinger (SPAA 2008 / Dagstuhl 08081 / Waterloo TR CS-2007-48).
//
// The LoPRAM is a PRAM restricted to p = O(log n) processors with a
// two-tier thread model whose pal-threads (Parallel ALgorithmic threads)
// are scheduled through an ordered activation tree. The paper's central
// results — a parallel Master theorem giving work-optimal speedup for
// divide-and-conquer Cases 1 and 2 (Theorem 1), the parallel-merge refinement
// for Case 3 (Equation 5), and generic parallelizations of dynamic
// programming (Algorithm 1) and memoization — are implemented and validated
// here on two execution engines: a deterministic discrete-time machine
// simulator (exact step counts) and a goroutine runtime (real speedups).
//
// Layout:
//
//   - internal/core       — public facade (model sizing, algorithm wrappers,
//     the named-algorithm catalogue dispatching onto every engine)
//   - internal/sim        — the LoPRAM machine simulator (§3.1 scheduler)
//   - internal/palrt      — work-stealing goroutine runtime with palthreads semantics
//   - internal/crew       — CREW memory, CRCW-on-CREW combining (§3, §4.6)
//   - internal/master     — Master theorem + parallel predictors (Thm 1, Eq 5)
//   - internal/dandc      — D&C framework and algorithms (§4.1)
//   - internal/dp         — parallel dynamic programming (§4.2–§4.4)
//   - internal/memo       — parallel memoization (§4.5)
//   - internal/dag        — poset/antichain substrate (Mirsky, §4.3)
//   - internal/pram       — Θ(n)-processor PRAM baseline + Brent emulation (§2)
//   - internal/network    — interconnect realizability model (§1)
//   - internal/jobqueue   — sharded job-dispatch service over the engines:
//     key-hash placement, per-shard worker pools with idle-shard work
//     stealing, per-class admission control, LRU result caches (cmd/lopramd)
//   - internal/scenario   — declarative load scenarios: arrival processes,
//     traffic mixes, priority splits; deterministic replay + reports
//   - internal/workload   — deterministic input, traffic-mix and arrival
//     generators
//   - internal/stats      — fitting, speedup and latency-summary toolkit
//   - internal/experiments— the E1–E18 + A1–A7 reproduction suite
//
// See README.md for a guided tour, ARCHITECTURE.md for the serving-stack
// layer map. The benchmarks in bench_test.go regenerate every table and
// figure:
//
//	go test -bench=. -benchmem
package lopram
